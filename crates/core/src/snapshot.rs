//! Binary spatial snapshots: a compact persisted form of a partitioned
//! dataset, written and re-read with collective two-phase I/O.
//!
//! Every run so far re-ingested WKT text from scratch; the results of the
//! partition/exchange pipeline evaporated at the end of the job. This
//! module closes the loop: [`write_partitioned`] persists each rank's
//! owned `(cell, feature)` pairs once, and [`read_partitioned`] re-loads
//! them — bit-identically under the same world size and decomposition,
//! or re-routed through the exchange under any other rank count.
//!
//! ## File format (version 1, all fields little-endian)
//!
//! The byte-level normative specification — including the empty-section
//! placement rules and the legacy stripe-aligned-empty-section reader
//! tolerance — is `docs/FORMAT.md` §3 in the repository root; the
//! summary below must stay in agreement with it.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic  "MVIOSNAP"
//!      8     4  version (= 1)
//!     12     4  sections — writer world size
//!     16     4  cells_x  ┐ effective decomposition grid; with `bounds`
//!     20     4  cells_y  ┘ this identifies the cell-id space
//!     24    32  bounds   (min_x, min_y, max_x, max_y as f64)
//!     56     8  total records
//!     64   24×S section table: (offset u64, len u64, records u64) per
//!               writer rank, ascending non-overlapping offsets
//!      …        payload: per section, that writer rank's records in the
//!               exchange wire format `[u64 cell][u32 wkb_len][wkb]
//!               [u32 ud_len][ud]`; non-empty section starts are padded
//!               out to stripe boundaries (table lengths are exact,
//!               padding is never parsed); empty sections sit unpadded at
//!               the previous section's end so they never point past EOF
//! ```
//!
//! The record payload **is** the exchange wire format, so a snapshot
//! section can be split record-aligned and routed through
//! [`crate::exchange::ExchangePlan`] without re-serialization: re-reading
//! under a different rank count costs one routing scan plus the usual
//! staged all-to-all.
//!
//! ## Collective two-phase I/O
//!
//! Writes go through [`MpiFile::write_at_all_staged`]: every rank ships
//! its section to the ROMIO-style aggregators over the nonblocking
//! request layer, and the aggregators flush large contiguous
//! stripe-aligned writes (section starts are stripe-padded, so flush
//! offsets land on stripe boundaries — the access pattern the paper
//! recommends). Reads use the inverse scatter
//! ([`MpiFile::read_at_all_staged`]). The aggregator count follows the
//! [`mvio_msim::select_readers`] heuristic, overridable with the
//! `MVIO_IO_AGGREGATORS` environment knob
//! ([`mvio_msim::AGGREGATORS_ENV`]) or [`Hints::cb_nodes`].

use crate::decomp::SpatialDecomposition;
use crate::exchange::{
    exchange_serialized_frames_with, exchange_serialized_with, record_len_at, serialize_record,
    ExchangeChunk, ExchangeOptions, ExchangeStats, FrameStore, SerializedBatch,
};
use crate::grid::GridSpec;
use crate::{CoreError, Feature, Result};
use mvio_geom::Rect;
use mvio_msim::hints::ROMIO_MAX_IO_BYTES;
use mvio_msim::{aggregators_from_env, Comm, Hints, MpiFile, Work};
use mvio_pfs::{SimFs, StripeSpec};
use std::sync::Arc;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"MVIOSNAP";

/// Format version this library writes (and the only one it reads).
pub const VERSION: u32 = 1;

/// Fixed header length in bytes (the section table follows it).
pub const HEADER_LEN: u64 = 64;

/// Bytes per section-table entry.
pub const SECTION_ENTRY_LEN: u64 = 24;

/// One writer rank's byte range within a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionEntry {
    /// Absolute file offset of the section's first record byte.
    pub offset: u64,
    /// Exact payload length in bytes (stripe padding excluded).
    pub len: u64,
    /// Records contained in the section.
    pub records: u64,
}

/// Decoded snapshot header + section table.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Format version found in the file.
    pub version: u32,
    /// Effective decomposition grid resolution the cells refer to.
    pub spec: GridSpec,
    /// Global extent the grid tiles.
    pub bounds: Rect,
    /// Total records across all sections.
    pub total_records: u64,
    /// Per-writer-rank sections, indexed by writer rank.
    pub sections: Vec<SectionEntry>,
}

impl SnapshotMeta {
    /// Total exact payload bytes across all sections.
    pub fn payload_bytes(&self) -> u64 {
        self.sections.iter().map(|s| s.len).sum()
    }
}

/// Options for [`write_partitioned`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotWriteOptions {
    /// Striping for the created file (honoured on Lustre; GPFS always
    /// uses the filesystem default). `None` = the filesystem default.
    pub stripe: Option<StripeSpec>,
    /// MPI-IO hints for the collective write. The default wires
    /// `cb_nodes` to the `MVIO_IO_AGGREGATORS` knob.
    pub hints: Hints,
}

impl Default for SnapshotWriteOptions {
    fn default() -> Self {
        SnapshotWriteOptions {
            stripe: None,
            hints: Hints {
                cb_nodes: aggregators_from_env(),
                ..Hints::default()
            },
        }
    }
}

impl SnapshotWriteOptions {
    /// Sets the stripe spec for the created file.
    pub fn with_stripe(mut self, stripe: StripeSpec) -> Self {
        self.stripe = Some(stripe);
        self
    }

    /// Sets the MPI-IO hints (aggregator count via `cb_nodes`).
    pub fn with_hints(mut self, hints: Hints) -> Self {
        self.hints = hints;
        self
    }
}

/// Options for [`read_partitioned`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReadOptions {
    /// MPI-IO hints for the collective read. The default wires
    /// `cb_nodes` to the `MVIO_IO_AGGREGATORS` knob.
    pub hints: Hints,
    /// Chunk policy of the routing exchange that re-partitions the
    /// records (resolves `MVIO_EXCHANGE_CHUNK` by default).
    pub chunk: ExchangeChunk,
}

impl Default for SnapshotReadOptions {
    fn default() -> Self {
        SnapshotReadOptions {
            hints: Hints {
                cb_nodes: aggregators_from_env(),
                ..Hints::default()
            },
            chunk: ExchangeChunk::Auto,
        }
    }
}

impl SnapshotReadOptions {
    /// Sets the routing-exchange chunk policy.
    pub fn with_chunk(mut self, chunk: ExchangeChunk) -> Self {
        self.chunk = chunk;
        self
    }
}

/// Per-rank result of a collective snapshot write.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotWriteReport {
    /// This rank's section in the file.
    pub section: SectionEntry,
    /// Exact payload bytes across all sections (excluding header/padding).
    pub bytes_total: u64,
    /// Records across all sections.
    pub records_total: u64,
    /// Virtual seconds the collective write took on this rank (identical
    /// on every rank: staged writes exit at the global completion).
    pub write_seconds: f64,
    /// Aggregate virtual write bandwidth, bytes per virtual second.
    pub bandwidth: f64,
}

/// Per-rank result of a collective snapshot read.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotReadReport {
    /// Half-open range of section indices this rank read and routed.
    pub sections: (usize, usize),
    /// Payload bytes this rank read from the file.
    pub bytes_read: u64,
    /// Records this rank scanned out of its sections (pre-exchange).
    pub records_scanned: u64,
    /// Virtual seconds from entering the collective read to holding the
    /// routed records (includes the routing exchange).
    pub read_seconds: f64,
    /// Counters of the routing exchange.
    pub exchange: ExchangeStats,
}

fn corrupt(msg: impl Into<String>) -> CoreError {
    CoreError::Snapshot(msg.into())
}

fn encode_meta(meta: &SnapshotMeta) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(HEADER_LEN as usize + meta.sections.len() * SECTION_ENTRY_LEN as usize);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&meta.version.to_le_bytes());
    out.extend_from_slice(&(meta.sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&meta.spec.cells_x.to_le_bytes());
    out.extend_from_slice(&meta.spec.cells_y.to_le_bytes());
    for v in [
        meta.bounds.min_x,
        meta.bounds.min_y,
        meta.bounds.max_x,
        meta.bounds.max_y,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&meta.total_records.to_le_bytes());
    debug_assert_eq!(out.len() as u64, HEADER_LEN);
    for s in &meta.sections {
        out.extend_from_slice(&s.offset.to_le_bytes());
        out.extend_from_slice(&s.len.to_le_bytes());
        out.extend_from_slice(&s.records.to_le_bytes());
    }
    out
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    // audit: the range is exactly 4 bytes by construction.
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    // audit: the range is exactly 8 bytes by construction.
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

fn f64_at(buf: &[u8], at: usize) -> f64 {
    // audit: the range is exactly 8 bytes by construction.
    f64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes and validates a header + section table against the file's
/// actual length. Every rejection is a typed [`CoreError::Snapshot`].
fn decode_meta(bytes: &[u8], file_len: u64) -> Result<SnapshotMeta> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt(format!(
            "truncated header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt(format!(
            "bad magic {:?} (not a snapshot file)",
            &bytes[..8]
        )));
    }
    let version = u32_at(bytes, 8);
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported version {version} (this build reads {VERSION})"
        )));
    }
    // audit: u32 -> usize is lossless on every supported target.
    let sections = u32_at(bytes, 12) as usize;
    let spec = GridSpec {
        cells_x: u32_at(bytes, 16),
        cells_y: u32_at(bytes, 20),
    };
    if spec.try_num_cells().is_none() {
        return Err(corrupt(format!(
            "invalid grid {}x{} (zero or overflowing cell count)",
            spec.cells_x, spec.cells_y
        )));
    }
    let bounds = Rect::new(
        f64_at(bytes, 24),
        f64_at(bytes, 32),
        f64_at(bytes, 40),
        f64_at(bytes, 48),
    );
    if !(bounds.min_x.is_finite()
        && bounds.min_y.is_finite()
        && bounds.max_x.is_finite()
        && bounds.max_y.is_finite())
    {
        return Err(corrupt("non-finite bounds"));
    }
    let total_records = u64_at(bytes, 56);
    let table_end = HEADER_LEN as usize + sections * SECTION_ENTRY_LEN as usize;
    if bytes.len() < table_end {
        return Err(corrupt(format!(
            "truncated section table: {} bytes, need {table_end} for {sections} sections",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(sections);
    let mut prev_end = table_end as u64;
    let mut records = 0u64;
    for i in 0..sections {
        let at = HEADER_LEN as usize + i * SECTION_ENTRY_LEN as usize;
        let s = SectionEntry {
            offset: u64_at(bytes, at),
            len: u64_at(bytes, at + 8),
            records: u64_at(bytes, at + 16),
        };
        if s.offset < prev_end {
            return Err(corrupt(format!(
                "section {i} at offset {} overlaps the bytes before it (end {prev_end})",
                s.offset
            )));
        }
        let Some(end) = s.offset.checked_add(s.len) else {
            return Err(corrupt(format!("section {i} length overflows")));
        };
        // Empty sections carry no bytes, so their offset is allowed to
        // sit at (or, in files from older writers that stripe-aligned
        // empty sections, past) the end of the file.
        if s.len > 0 && end > file_len {
            return Err(corrupt(format!(
                "section {i} ends at {end} beyond the file length {file_len}"
            )));
        }
        prev_end = end;
        records = records
            .checked_add(s.records)
            .ok_or_else(|| corrupt("section record counts overflow"))?;
        out.push(s);
    }
    if records != total_records {
        return Err(corrupt(format!(
            "section table counts {records} records but the header claims {total_records}"
        )));
    }
    Ok(SnapshotMeta {
        version,
        spec,
        bounds,
        total_records,
        sections: out,
    })
}

/// Reads the header, then the section table it announces, through a
/// positioned reader (`read(offset, buf) -> bytes read`), and decodes.
/// The table allocation is bounded by the file's actual length *before*
/// the header's section count is trusted, so a corrupt count becomes a
/// typed error instead of a multi-gigabyte allocation. Shared by
/// [`read_meta`] (untimed `peek`) and [`read_partitioned`] (timed
/// `read_at`).
fn read_meta_with(
    file_len: u64,
    mut read: impl FnMut(u64, &mut [u8]) -> Result<usize>,
) -> Result<SnapshotMeta> {
    let mut head = vec![0u8; HEADER_LEN as usize];
    let n = read(0, &mut head)?;
    head.truncate(n);
    if n == HEADER_LEN as usize {
        let sections = u32_at(&head, 12) as u64;
        let table = sections.saturating_mul(SECTION_ENTRY_LEN);
        if HEADER_LEN + table > file_len {
            return Err(corrupt(format!(
                "section table for {sections} sections extends past the file length {file_len}"
            )));
        }
        // audit: `HEADER_LEN + table` was just checked against the file length.
        head.resize((HEADER_LEN + table) as usize, 0);
        let got = read(HEADER_LEN, &mut head[HEADER_LEN as usize..])?;
        head.truncate(HEADER_LEN as usize + got);
    }
    decode_meta(&head, file_len)
}

/// Reads and validates a snapshot's header + section table without
/// timing (serial inspection: tooling, tests, dataset catalogs).
pub fn read_meta(fs: &Arc<SimFs>, path: &str) -> Result<SnapshotMeta> {
    let file = fs.open(path)?;
    read_meta_with(file.len(), |off, buf| Ok(file.peek(off, buf)))
}

/// [`read_meta`] with the header/table reads going through the timed
/// independent [`MpiFile::read_at`], advancing the calling rank's clock
/// — for simulated pipelines whose phase accounting must include the
/// header I/O (e.g. the snapshot spatial join's partitioning phase).
/// Every rank reads identical bytes, so acceptance is symmetric across
/// ranks.
/// Not collective — uses independent reads; any subset of ranks may
/// call it.
pub fn read_meta_timed(comm: &mut Comm, fs: &Arc<SimFs>, path: &str) -> Result<SnapshotMeta> {
    let file = MpiFile::open(fs, path, Hints::default())?;
    read_meta_with(file.len(), |off, buf| Ok(file.read_at(comm, off, buf)?))
}

/// Rounds `at` up to the next multiple of `align`.
fn align_up(at: u64, align: u64) -> u64 {
    let align = align.max(1);
    at.div_ceil(align) * align
}

/// Collectively persists each rank's owned `(cell, feature)` pairs as a
/// binary snapshot at `path`, creating the file. The records of rank `r`
/// become section `r`, in input order, so a later [`read_partitioned`]
/// under the same world size and decomposition returns exactly the input
/// (bit-identical pairs, same order), and any other rank count re-routes
/// the records through the exchange. Collective: every rank must call it.
///
/// The payload is shipped through the staged two-phase collective write
/// ([`MpiFile::write_at_all_staged`]); non-empty section starts are
/// padded to the file's stripe size so every aggregator flush is stripe
/// aligned (empty sections are left unpadded — aligning them could place
/// their offset past the end of the file).
///
/// # Errors
///
/// [`CoreError::Pfs`] when the path already exists. A serialization
/// failure on any rank (a record exceeding the u32 wire limit) aborts
/// the write on **every** rank before any byte reaches the file — the
/// created path is removed, the failing rank returns the original
/// [`CoreError::Partition`] and its peers a [`CoreError::Snapshot`] —
/// rather than persisting a metadata-consistent snapshot silently
/// missing that rank's records. All outcomes — the create, the
/// per-rank serialization, and rank 0's header write — are agreed
/// collectively, so a failing rank never strands its peers
/// mid-protocol.
pub fn write_partitioned(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    pairs: &[(u32, Feature)],
    decomp: &dyn SpatialDecomposition,
    opts: &SnapshotWriteOptions,
) -> Result<SnapshotWriteReport> {
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );

    // Serialize my section (the exchange wire format). A failure parks
    // the error and continues with an empty section: the collectives
    // below must stay matched across ranks.
    let mut deferred: Option<CoreError> = None;
    let mut buf = Vec::new();
    let mut scratch = Vec::new();
    for (cell, feature) in pairs {
        if let Err(e) = serialize_record(*cell, feature, &mut scratch, &mut buf) {
            deferred = Some(e);
            buf.clear();
            break;
        }
    }
    let my_records = if deferred.is_some() {
        0
    } else {
        pairs.len() as u64
    };
    comm.charge(Work::SerializeGeoms {
        n: my_records,
        bytes: buf.len() as u64,
    });

    // Create on rank 0 and broadcast the outcome, so every rank agrees
    // on whether to proceed — a failing create must not leave rank 0
    // returning while its peers (for whom `open` might well succeed,
    // e.g. on an already-existing path) sail into the collectives alone.
    let create_err = if comm.rank() == 0 {
        fs.create(path, opts.stripe).err()
    } else {
        None
    };
    let word = match &create_err {
        None => Vec::new(),
        Some(e) => {
            let mut v = vec![match e {
                mvio_pfs::PfsError::AlreadyExists(_) => 1u8,
                mvio_pfs::PfsError::BadStripe(_) => 2,
                _ => 3,
            }];
            v.extend(e.to_string().as_bytes());
            v
        }
    };
    let status = comm.labeled("snapshot.write.create", |c| c.bcast(0, word));
    if let Some(e) = create_err {
        return Err(e.into()); // rank 0 keeps the original error
    }
    if let Some((&code, msg)) = status.split_first() {
        let msg = String::from_utf8_lossy(msg).into_owned();
        return Err(match code {
            1 => mvio_pfs::PfsError::AlreadyExists(path.to_string()).into(),
            2 => mvio_pfs::PfsError::BadStripe(msg).into(),
            _ => corrupt(format!("create on rank 0 failed: {msg}")),
        });
    }
    let file = MpiFile::open(fs, path, opts.hints)?;
    let stripe_size = file.file().stripe().size;

    // Everyone learns every section length — and whether any rank failed
    // to serialize — and lays the file out identically: header + table,
    // then stripe-aligned sections.
    let mut word = [0u8; 17];
    word[..8].copy_from_slice(&(buf.len() as u64).to_le_bytes());
    word[8..16].copy_from_slice(&my_records.to_le_bytes());
    // audit: bool -> u8 is 0/1, lossless.
    word[16] = deferred.is_some() as u8;
    let gathered = comm.labeled("snapshot.write.sections", |c| c.allgather(word.to_vec()));
    // A serialization failure anywhere aborts the write *before* any
    // byte reaches the file: persisting a metadata-consistent snapshot
    // that silently misses one rank's records would be far worse than
    // failing. Every rank sees the same flags, so the branch — and the
    // file removal on rank 0 — is symmetric.
    if let Some(bad) = gathered.iter().position(|w| w[16] != 0) {
        if comm.rank() == 0 {
            let _ = fs.remove(path);
        }
        return Err(deferred.unwrap_or_else(|| {
            corrupt(format!(
                "write aborted: rank {bad} failed to serialize its section"
            ))
        }));
    }
    let lens: Vec<(u64, u64)> = gathered
        .into_iter()
        .map(|w| (u64_at(&w, 0), u64_at(&w, 8)))
        .collect();
    // Symmetric pre-check of the per-call collective I/O limit: every
    // rank holds the same `lens`, so every rank takes this branch (and
    // rank 0 removes the file) together. Letting the oversized rank fail
    // `check_count` inside `write_at_all_staged` alone would strand its
    // peers in the staged collective.
    if let Some((bad, &(len, _))) = lens
        .iter()
        .enumerate()
        .find(|&(_, &(len, _))| len > ROMIO_MAX_IO_BYTES)
    {
        if comm.rank() == 0 {
            let _ = fs.remove(path);
        }
        return Err(corrupt(format!(
            "write aborted: rank {bad}'s section is {len} bytes, over the \
             {ROMIO_MAX_IO_BYTES}-byte collective I/O limit"
        )));
    }
    let mut sections = Vec::with_capacity(p);
    let mut at = HEADER_LEN + SECTION_ENTRY_LEN * p as u64;
    let mut total_records = 0u64;
    for &(len, records) in &lens {
        // Only non-empty sections are stripe-aligned: aligning an empty
        // trailing section would place its offset past the last written
        // byte and the file would fail the reader's bounds validation.
        if len > 0 {
            at = align_up(at, stripe_size);
        }
        sections.push(SectionEntry {
            offset: at,
            len,
            records,
        });
        at += len;
        total_records += records;
    }
    let meta = SnapshotMeta {
        version: VERSION,
        spec: decomp.grid_spec(),
        bounds: decomp.bounds(),
        total_records,
        sections,
    };

    // Rank 0 writes the header + table independently, and the outcome is
    // broadcast (like the create outcome above) before anyone enters the
    // staged collective: a failing header write must not leave rank 0
    // returning while its peers sit in the collective waiting for it.
    let t0 = comm.now();
    let header_err = if comm.rank() == 0 {
        file.write_at(comm, 0, &encode_meta(&meta)).err()
    } else {
        None
    };
    let word = match &header_err {
        None => Vec::new(),
        Some(e) => {
            let mut v = vec![1u8];
            v.extend(e.to_string().as_bytes());
            v
        }
    };
    let status = comm.labeled("snapshot.write.header", |c| c.bcast(0, word));
    if let Some((_, msg)) = status.split_first() {
        if comm.rank() == 0 {
            let _ = fs.remove(path);
        }
        return Err(match header_err {
            Some(e) => e.into(), // rank 0 keeps the original error
            None => corrupt(format!(
                "header write on rank 0 failed: {}",
                String::from_utf8_lossy(msg)
            )),
        });
    }
    let my_section = meta.sections[comm.rank()];
    comm.labeled("snapshot.write.payload", |c| {
        file.write_at_all_staged(c, my_section.offset, &buf)
    })?;
    let write_seconds = comm.now() - t0;

    let bytes_total = meta.payload_bytes();
    Ok(SnapshotWriteReport {
        section: my_section,
        bytes_total,
        records_total: total_records,
        write_seconds,
        bandwidth: if write_seconds > 0.0 {
            bytes_total as f64 / write_seconds
        } else {
            0.0
        },
    })
}

/// The contiguous range of section indices rank `rank` of `p` loads:
/// section `r` exactly when the reader world matches the writer world
/// (the bit-identical fast path), an even contiguous split otherwise.
fn reader_sections(sections: usize, rank: usize, p: usize) -> (usize, usize) {
    if sections == p {
        (rank, rank + 1)
    } else {
        (rank * sections / p, (rank + 1) * sections / p)
    }
}

/// Smallest byte range covering every non-empty section in `slice`
/// (`(0, 0)` when all are empty or the slice is).
fn covering_range(slice: &[SectionEntry]) -> (u64, u64) {
    let (lo, hi) = slice
        .iter()
        .filter(|s| s.len > 0)
        .fold((u64::MAX, 0u64), |(lo, hi), s| {
            (lo.min(s.offset), hi.max(s.offset + s.len))
        });
    if hi == 0 {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// Collectively loads a snapshot written by [`write_partitioned`],
/// routing every record to the rank owning its cell under `decomp`.
/// Validates that `decomp` tiles the same cell-id space the file was
/// written under (same grid resolution and bounds). With the writer's
/// world size and decomposition the result is **bit-identical** to what
/// was written — same records, same order, zero bytes exchanged; any
/// other rank count re-routes through the staged exchange. Collective:
/// every rank must call it.
pub fn read_partitioned(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    decomp: &dyn SpatialDecomposition,
    opts: &SnapshotReadOptions,
) -> Result<(Vec<(u32, Feature)>, SnapshotReadReport)> {
    let RoutedRead {
        batch,
        deferred,
        sections,
        bytes_read,
        records_scanned,
        t0,
    } = read_and_route(comm, fs, path, decomp, opts)?;

    // The routing exchange. Under the writer's world size and matching
    // decomposition every record routes back to its own rank, so this
    // degenerates to a local pass-through (zero cross-rank bytes) and
    // the output order is exactly the written order.
    let ex_opts = ExchangeOptions::with_chunk(opts.chunk);
    let (owned, exchange) = match comm.labeled("snapshot.read.route", |c| {
        exchange_serialized_with(c, batch, &ex_opts)
    }) {
        Ok(out) => out,
        Err(e) => return Err(deferred.unwrap_or(e)),
    };
    if let Some(e) = deferred {
        return Err(e);
    }
    Ok((
        owned,
        SnapshotReadReport {
            sections,
            bytes_read,
            records_scanned,
            read_seconds: comm.now() - t0,
            exchange,
        },
    ))
}

/// The zero-copy counterpart of [`read_partitioned`]: identical header
/// validation, staged collective read, routing scan and
/// `snapshot.read.route` exchange, but the routed records arrive as a
/// [`FrameStore`] of validated wire buffers — never materialized into
/// owned [`Feature`]s. Record order under [`FrameStore::frames`] is
/// bit-identical to the owned variant's output. Collective: every rank
/// must call it.
pub fn read_partitioned_frames(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    decomp: &dyn SpatialDecomposition,
    opts: &SnapshotReadOptions,
) -> Result<(FrameStore, SnapshotReadReport)> {
    let RoutedRead {
        batch,
        deferred,
        sections,
        bytes_read,
        records_scanned,
        t0,
    } = read_and_route(comm, fs, path, decomp, opts)?;
    let ex_opts = ExchangeOptions::with_chunk(opts.chunk);
    let (store, exchange) = match comm.labeled("snapshot.read.route", |c| {
        exchange_serialized_frames_with(c, batch, &ex_opts)
    }) {
        Ok(out) => out,
        Err(e) => return Err(deferred.unwrap_or(e)),
    };
    if let Some(e) = deferred {
        return Err(e);
    }
    Ok((
        store,
        SnapshotReadReport {
            sections,
            bytes_read,
            records_scanned,
            read_seconds: comm.now() - t0,
            exchange,
        },
    ))
}

/// Everything the two `read_partitioned*` flavors share, up to (but not
/// including) the routing exchange: validated header + table, the staged
/// collective payload read, and the per-record routing scan into a
/// per-destination batch. A routing error is parked in `deferred` (with
/// an emptied batch) so the caller's exchange stays matched across ranks.
struct RoutedRead {
    batch: SerializedBatch,
    deferred: Option<CoreError>,
    sections: (usize, usize),
    bytes_read: u64,
    records_scanned: u64,
    t0: f64,
}

/// Shared first half of [`read_partitioned`] /
/// [`read_partitioned_frames`]. Collective: every rank must call it (it
/// issues the `snapshot.read.payload` staged read).
fn read_and_route(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    decomp: &dyn SpatialDecomposition,
    opts: &SnapshotReadOptions,
) -> Result<RoutedRead> {
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );
    let t0 = comm.now();
    let file = MpiFile::open(fs, path, opts.hints)?;
    let file_len = file.len();

    // Every rank reads and validates the header + table independently;
    // the bytes are identical, so acceptance is symmetric across ranks
    // and nobody enters the collectives below unless everybody does.
    let meta = read_meta_with(file_len, |off, buf| Ok(file.read_at(comm, off, buf)?))?;
    if meta.spec != decomp.grid_spec() || meta.bounds != decomp.bounds() {
        return Err(corrupt(format!(
            "decomposition mismatch: file has grid {}x{} over {:?}, the supplied \
             decomposition tiles {}x{} over {:?}",
            meta.spec.cells_x,
            meta.spec.cells_y,
            meta.bounds,
            decomp.grid_spec().cells_x,
            decomp.grid_spec().cells_y,
            decomp.bounds(),
        )));
    }
    let num_cells = decomp.num_cells();

    // Symmetric pre-check of the per-call collective I/O limit: every
    // rank decoded the same table, so every rank can bound every rank's
    // covering range and reject an oversized one together — one rank
    // failing `check_count` inside the staged read alone would strand
    // its peers in the collective.
    for r in 0..p {
        let (lo, hi) = reader_sections(meta.sections.len(), r, p);
        let (range_lo, range_hi) = covering_range(&meta.sections[lo..hi]);
        let span = range_hi - range_lo;
        if span > ROMIO_MAX_IO_BYTES {
            return Err(corrupt(format!(
                "rank {r}'s covering read range is {span} bytes, over the \
                 {ROMIO_MAX_IO_BYTES}-byte collective I/O limit"
            )));
        }
    }

    // Collective read of my sections' covering byte range (padding gaps
    // between sections ride along; the table slices them back out).
    let (s_lo, s_hi) = reader_sections(meta.sections.len(), comm.rank(), p);
    let mine = &meta.sections[s_lo..s_hi];
    let (range_lo, range_hi) = covering_range(mine);
    // audit: the span was pre-checked against the 2 GiB collective I/O limit above.
    let mut payload = vec![0u8; (range_hi - range_lo) as usize];
    let got = comm.labeled("snapshot.read.payload", |c| {
        file.read_at_all_staged(c, range_lo, &mut payload)
    })?;

    // Route: walk each section's records, steering the raw wire bytes to
    // their owner rank under `decomp`. Errors are parked so the routing
    // exchange below stays matched; the failing rank ships nothing.
    let mut deferred: Option<CoreError> = None;
    let mut batch = SerializedBatch::empty(p);
    let mut bytes_read = 0u64;
    let mut records_scanned = 0u64;
    let mut route = |batch: &mut SerializedBatch| -> Result<()> {
        if got < payload.len() {
            return Err(corrupt(format!(
                "payload short read: got {got} of {} bytes",
                payload.len()
            )));
        }
        for (i, s) in mine.iter().enumerate() {
            if s.len == 0 {
                if s.records != 0 {
                    return Err(corrupt(format!(
                        "section {} is empty but the table claims {} records",
                        s_lo + i,
                        s.records
                    )));
                }
                continue;
            }
            // audit: `s.offset` lies inside the covering range by construction.
            let at = (s.offset - range_lo) as usize;
            // audit: section offsets/lengths were validated against the file length, and the covering span is under the 2 GiB collective I/O pre-check.
            let section = &payload[at..at + s.len as usize];
            let mut pos = 0usize;
            let mut records = 0u64;
            while pos < section.len() {
                let len = record_len_at(section, pos)
                    .map_err(|_| corrupt(format!("torn record in section {}", s_lo + i)))?;
                // Range-check the full u64 word before narrowing: a
                // corrupted high word must not alias a valid cell id.
                let cell = u64_at(section, pos);
                if cell >= num_cells as u64 {
                    return Err(corrupt(format!(
                        "record cell {cell} out of range (decomposition has {num_cells} cells)"
                    )));
                }
                // audit: range-checked against `num_cells` just above.
                let dst = decomp.cell_to_rank(cell as u32);
                batch.bufs[dst].extend_from_slice(&section[pos..pos + len]);
                batch.records[dst] += 1;
                pos += len;
                records += 1;
            }
            if records != s.records {
                return Err(corrupt(format!(
                    "section {} holds {records} records, table says {}",
                    s_lo + i,
                    s.records
                )));
            }
            bytes_read += s.len;
            records_scanned += records;
        }
        Ok(())
    };
    if let Err(e) = route(&mut batch) {
        deferred = Some(e);
        batch = SerializedBatch::empty(p);
    }
    comm.charge(Work::CopyBytes { n: bytes_read });

    Ok(RoutedRead {
        batch,
        deferred,
        sections: (s_lo, s_hi),
        bytes_read,
        records_scanned,
        t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::grid::{CellMap, UniformGrid};
    use mvio_geom::Point;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    fn decomp(cells: u32, ranks: usize) -> UniformDecomposition {
        let grid = UniformGrid::new(
            Rect::new(0.0, 0.0, cells as f64, 1.0),
            GridSpec {
                cells_x: cells,
                cells_y: 1,
            },
        );
        UniformDecomposition::new(grid, CellMap::RoundRobin, ranks)
    }

    fn pairs_for(rank: usize, ranks: usize, cells: u32, per_cell: usize) -> Vec<(u32, Feature)> {
        // Only pairs this rank owns (what an exchange would have left).
        (0..cells)
            .filter(|c| (*c as usize) % ranks == rank)
            .flat_map(|c| {
                (0..per_cell).map(move |i| {
                    (
                        c,
                        Feature::with_userdata(
                            mvio_geom::Geometry::Point(Point::new(c as f64 + 0.5, 0.5)),
                            format!("c{c}i{i}"),
                        ),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn same_world_round_trip_is_bit_identical_with_no_exchange_traffic() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let d = decomp(10, comm.size());
            let pairs = pairs_for(comm.rank(), comm.size(), 10, 3);
            let rep = write_partitioned(
                comm,
                &fs,
                "snap.bin",
                &pairs,
                &d,
                &SnapshotWriteOptions::default(),
            )
            .unwrap();
            assert_eq!(rep.section.records, pairs.len() as u64);
            assert!(rep.write_seconds > 0.0);
            let (back, r) =
                read_partitioned(comm, &fs, "snap.bin", &d, &SnapshotReadOptions::default())
                    .unwrap();
            assert_eq!(back, pairs, "rank {}", comm.rank());
            // Same world: every record routes back to its own rank.
            assert_eq!(r.exchange.records_received, pairs.len() as u64);
            assert_eq!(r.exchange.records_sent, pairs.len() as u64);
            assert_eq!(r.records_scanned, pairs.len() as u64);
            r.read_seconds
        });
        assert!(out.iter().all(|&t| t > 0.0));
    }

    /// The frames read is the owned read, bit for bit — same records in
    /// the same order once materialized, for the writer's world and a
    /// re-routed one, blocking and chunked.
    #[test]
    fn frames_read_matches_owned_read() {
        for (write_ranks, read_ranks) in [(3usize, 3usize), (3, 2)] {
            let fs = SimFs::new(FsConfig::lustre_comet());
            {
                let fs = Arc::clone(&fs);
                World::run(
                    WorldConfig::new(Topology::single_node(write_ranks)),
                    move |comm| {
                        let d = decomp(12, comm.size());
                        let pairs = pairs_for(comm.rank(), comm.size(), 12, 2);
                        write_partitioned(
                            comm,
                            &fs,
                            "zc.bin",
                            &pairs,
                            &d,
                            &SnapshotWriteOptions::default(),
                        )
                        .unwrap();
                    },
                );
            }
            for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(64)] {
                let fs = Arc::clone(&fs);
                World::run(
                    WorldConfig::new(Topology::single_node(read_ranks)),
                    move |comm| {
                        let d = decomp(12, comm.size());
                        let opts = SnapshotReadOptions {
                            chunk,
                            ..Default::default()
                        };
                        let (owned, orep) =
                            read_partitioned(comm, &fs, "zc.bin", &d, &opts).unwrap();
                        let (store, frep) =
                            read_partitioned_frames(comm, &fs, "zc.bin", &d, &opts).unwrap();
                        assert_eq!(store.records(), owned.len() as u64);
                        let materialized: Vec<(u32, Feature)> = store
                            .frames()
                            .map(|fr| {
                                let (g, _) = mvio_geom::wkb::decode_ref(fr.wkb).unwrap();
                                (
                                    fr.cell,
                                    Feature::with_userdata(g.to_geometry(), fr.userdata),
                                )
                            })
                            .collect();
                        assert_eq!(materialized, owned, "rank {}", comm.rank());
                        assert_eq!(frep.records_scanned, orep.records_scanned);
                        assert_eq!(frep.bytes_read, orep.bytes_read);
                        assert_eq!(frep.exchange.bytes_received, orep.exchange.bytes_received);
                    },
                );
            }
        }
    }

    #[test]
    fn empty_trailing_rank_round_trips() {
        // Regression: an empty trailing section used to be stripe-aligned
        // past the last written byte, and the re-read rejected the file
        // as "section ends beyond the file length".
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let d = decomp(4, comm.size());
                // Clustered input: every record lives on rank 0, rank 1
                // owns nothing and writes a zero-length section.
                let pairs = if comm.rank() == 0 {
                    pairs_for(0, comm.size(), 4, 3)
                } else {
                    Vec::new()
                };
                let rep = write_partitioned(
                    comm,
                    &fs,
                    "skew.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
                assert_eq!(rep.section.records, pairs.len() as u64);
                let (back, _) =
                    read_partitioned(comm, &fs, "skew.bin", &d, &SnapshotReadOptions::default())
                        .unwrap();
                assert_eq!(back, pairs, "rank {}", comm.rank());
            });
        }
        let meta = read_meta(&fs, "skew.bin").unwrap();
        assert_eq!(meta.sections[1].len, 0);
        assert_eq!(meta.sections[1].records, 0);
        let file = fs.open("skew.bin").unwrap();
        assert!(
            meta.sections[1].offset <= file.len(),
            "empty section at {} points past the file end {}",
            meta.sections[1].offset,
            file.len()
        );
    }

    #[test]
    fn all_empty_snapshot_round_trips() {
        // Zero records anywhere: the file is just a header + table, and
        // both the meta read and the collective re-read must accept it.
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let d = decomp(6, comm.size());
                let rep = write_partitioned(
                    comm,
                    &fs,
                    "empty.bin",
                    &[],
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
                assert_eq!(rep.records_total, 0);
                assert_eq!(rep.bytes_total, 0);
                let (back, r) =
                    read_partitioned(comm, &fs, "empty.bin", &d, &SnapshotReadOptions::default())
                        .unwrap();
                assert!(back.is_empty());
                assert_eq!(r.records_scanned, 0);
            });
        }
        let meta = read_meta(&fs, "empty.bin").unwrap();
        assert_eq!(meta.total_records, 0);
        assert!(meta.sections.iter().all(|s| s.len == 0));
    }

    #[test]
    fn legacy_aligned_empty_trailing_section_is_still_readable() {
        // Files from the old writer stripe-aligned empty sections too, so
        // a trailing empty section's offset can sit past EOF. The reader
        // exempts zero-length sections from the bounds check rather than
        // declaring such files corrupt.
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let d = decomp(4, comm.size());
                let pairs = if comm.rank() == 0 {
                    pairs_for(0, comm.size(), 4, 2)
                } else {
                    Vec::new()
                };
                write_partitioned(comm, &fs, "old.bin", &pairs, &d, &Default::default()).unwrap();
            });
        }
        // Rewrite section 1's table entry the way the old writer laid it
        // out: stripe-aligned past the last written byte.
        let file = fs.open("old.bin").unwrap();
        let stripe = file.stripe().size;
        let past_eof = (file.len() / stripe + 1) * stripe;
        let at = HEADER_LEN as usize + SECTION_ENTRY_LEN as usize;
        file.poke(at as u64, &past_eof.to_le_bytes());
        assert!(past_eof > file.len());
        let meta = read_meta(&fs, "old.bin").unwrap();
        assert_eq!(meta.sections[1].len, 0);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let d = decomp(4, comm.size());
            let (back, _) =
                read_partitioned(comm, &fs, "old.bin", &d, &Default::default()).unwrap();
            back.len()
        });
        assert_eq!(out[1], 0);
        assert!(out[0] > 0);
    }

    #[test]
    fn cross_world_reload_routes_records_to_their_owners() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        // Write with 4 ranks.
        let written = {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let d = decomp(12, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 12, 2);
                write_partitioned(
                    comm,
                    &fs,
                    "cross.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
                pairs
            })
        };
        let mut all_written: Vec<String> = written
            .iter()
            .flatten()
            .map(|(c, f)| format!("{c}:{}", f.userdata))
            .collect();
        all_written.sort();
        // Re-read with 3 ranks.
        let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            let d = decomp(12, comm.size());
            let (back, rep) =
                read_partitioned(comm, &fs, "cross.bin", &d, &SnapshotReadOptions::default())
                    .unwrap();
            for (cell, _) in &back {
                assert_eq!(d.cell_to_rank(*cell), comm.rank(), "misrouted record");
            }
            assert!(rep.records_scanned > 0 || comm.rank() > 0);
            back
        });
        let mut all_back: Vec<String> = out
            .iter()
            .flatten()
            .map(|(c, f)| format!("{c}:{}", f.userdata))
            .collect();
        all_back.sort();
        assert_eq!(all_back, all_written);
    }

    #[test]
    fn sections_are_stripe_aligned_and_meta_readable() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let stripe = StripeSpec::new(4, 1 << 10);
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let d = decomp(9, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 9, 4);
                write_partitioned(
                    comm,
                    &fs,
                    "aligned.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default().with_stripe(stripe),
                )
                .unwrap();
            });
        }
        let meta = read_meta(&fs, "aligned.bin").unwrap();
        assert_eq!(meta.version, VERSION);
        assert_eq!(meta.sections.len(), 3);
        assert_eq!(meta.total_records, 9 * 4);
        for s in &meta.sections {
            assert!(s.offset.is_multiple_of(1 << 10), "section at {}", s.offset);
        }
        // The collective write flushed stripe-aligned ranges.
        assert!(fs.stats().stripe_aligned_ops() > 0);
    }

    #[test]
    fn corrupt_headers_are_typed_errors() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let d = decomp(4, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 4, 1);
                write_partitioned(
                    comm,
                    &fs,
                    "c.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
            });
        }
        let good = fs.open("c.bin").unwrap().snapshot();

        let check = |mutate: &dyn Fn(&mut Vec<u8>), what: &str| {
            let mut bad = good.clone();
            mutate(&mut bad);
            let fs2 = SimFs::new(FsConfig::lustre_comet());
            fs2.create("bad.bin", None).unwrap().set_contents(bad);
            let err = read_meta(&fs2, "bad.bin").unwrap_err();
            assert!(
                matches!(err, CoreError::Snapshot(_)),
                "{what}: expected Snapshot error, got {err:?}"
            );
            err.to_string()
        };

        assert!(check(&|b| b[0] = b'X', "magic").contains("magic"));
        assert!(check(&|b| b[8] = 99, "version").contains("version"));
        assert!(check(&|b| b.truncate(10), "short header").contains("truncated header"));
        // With 70 bytes the table bound-check fires ("section table …
        // extends past the file length") before the table is ever read.
        assert!(check(&|b| b.truncate(70), "short table").contains("section table"));
        // Section running past EOF.
        assert!(check(
            &|b| {
                let at = HEADER_LEN as usize + 8;
                b[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            },
            "oversized section"
        )
        .contains("overflows"));
        // Header/table record-count disagreement.
        assert!(check(
            &|b| {
                let at = HEADER_LEN as usize + 16;
                let v = u64_at(b, at) + 1;
                b[at..at + 8].copy_from_slice(&v.to_le_bytes());
            },
            "count mismatch"
        )
        .contains("claims"));
        // An absurd section count must be rejected against the file
        // length, not turned into a multi-gigabyte table allocation.
        assert!(check(
            &|b| b[12..16].copy_from_slice(&u32::MAX.to_le_bytes()),
            "huge section count"
        )
        .contains("extends past"));
        // Per-section record counts whose sum overflows u64.
        assert!(check(
            &|b| {
                for s in 0..2 {
                    let at = HEADER_LEN as usize + s * SECTION_ENTRY_LEN as usize + 16;
                    b[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                }
            },
            "record-count overflow"
        )
        .contains("overflow"));
    }

    #[test]
    fn corrupted_cell_high_word_is_rejected_not_truncated() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                let d = decomp(4, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 4, 2);
                write_partitioned(comm, &fs, "hw.bin", &pairs, &d, &Default::default()).unwrap();
            });
        }
        // Set a high bit above u32 in the first record's cell word: the
        // low 32 bits still name a valid cell, so a truncating check
        // would silently accept the corruption.
        let meta = read_meta(&fs, "hw.bin").unwrap();
        let at = meta.sections[0].offset + 4;
        fs.open("hw.bin").unwrap().poke(at, &1u32.to_le_bytes());
        let out = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
            let d = decomp(4, comm.size());
            match read_partitioned(comm, &fs, "hw.bin", &d, &Default::default()) {
                Err(CoreError::Snapshot(m)) => m.contains("out of range"),
                other => panic!("expected Snapshot error, got {other:?}"),
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn mismatched_decomposition_is_rejected() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let d = decomp(6, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 6, 1);
                write_partitioned(
                    comm,
                    &fs,
                    "m.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
            });
        }
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let wrong = decomp(8, comm.size()); // different grid resolution
            matches!(
                read_partitioned(comm, &fs, "m.bin", &wrong, &SnapshotReadOptions::default()),
                Err(CoreError::Snapshot(m)) if m.contains("mismatch")
            )
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn torn_section_payload_errors_without_hanging_peers() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let d = decomp(4, comm.size());
                let pairs = pairs_for(comm.rank(), comm.size(), 4, 2);
                write_partitioned(
                    comm,
                    &fs,
                    "t.bin",
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
            });
        }
        // Corrupt section 0's payload (flip a length field deep inside).
        let meta = read_meta(&fs, "t.bin").unwrap();
        let at = meta.sections[0].offset + 8;
        let file = fs.open("t.bin").unwrap();
        file.poke(at, &u32::MAX.to_le_bytes());
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let d = decomp(4, comm.size());
            read_partitioned(comm, &fs, "t.bin", &d, &SnapshotReadOptions::default()).is_err()
        });
        // Rank 0 (reads section 0) errors; rank 1 completes.
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn existing_path_is_a_typed_error_everywhere() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("exists.bin", None).unwrap();
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let d = decomp(4, comm.size());
            let res = write_partitioned(
                comm,
                &fs,
                "exists.bin",
                &[],
                &d,
                &SnapshotWriteOptions::default(),
            );
            matches!(res, Err(CoreError::Pfs(_)))
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn covering_range_skips_empty_sections() {
        let s = |offset: u64, len: u64| SectionEntry {
            offset,
            len,
            records: 0,
        };
        assert_eq!(covering_range(&[]), (0, 0));
        assert_eq!(covering_range(&[s(100, 0), s(200, 0)]), (0, 0));
        assert_eq!(covering_range(&[s(100, 8)]), (100, 108));
        assert_eq!(
            covering_range(&[s(4096, 0), s(100, 8), s(500, 4)]),
            (100, 504)
        );
    }

    #[test]
    fn reader_section_assignment_covers_everything_exactly_once() {
        for sections in [0usize, 1, 3, 4, 7, 16] {
            for p in [1usize, 2, 3, 4, 5, 8] {
                let mut seen = vec![0u32; sections];
                for r in 0..p {
                    let (lo, hi) = reader_sections(sections, r, p);
                    for slot in &mut seen[lo..hi] {
                        *slot += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&n| n == 1),
                    "sections={sections} p={p}: {seen:?}"
                );
            }
        }
    }
}
