//! Online rebalancing for mutable partitions (ROADMAP item 2): streaming
//! inserts/deletes into an already-ingested partition, per-cell histogram
//! drift tracking, and cell-diff migration when the measured load
//! imbalance crosses a threshold.
//!
//! The paper's pipeline is write-once — ingest, decompose, join — but a
//! resident deployment keeps serving while the data drifts. This module
//! adds the three mutability primitives the serving layer composes:
//!
//! * [`apply_updates`] routes an [`Update`] batch through the staged
//!   chunked [`ExchangePlan`] to the ranks owning the overlapping cells
//!   (exactly the ingest pipeline's routing rule), applying received
//!   inserts and deletes to the local replica set as rounds complete;
//! * [`DriftTracker`] maintains the local per-cell reference-feature
//!   histogram incrementally as updates arrive — the same histogram
//!   [`AdaptiveBisection`] bisects at ingest time — and produces the
//!   global view with one element-wise allreduce;
//! * [`Rebalancer::maybe_rebalance`] recomputes the decomposition from
//!   the drifted histogram when imbalance crosses its threshold, and
//!   [`migrate_cells`] ships **only the replicas of cells whose owner
//!   changed** between the old and new `cell_to_rank` maps — a diff, not
//!   a full re-shuffle (generalizing the snapshot any-world re-route).
//!
//! The cell tiling itself never changes — rebalancing reassigns whole
//! cells to ranks, so resident `(cell, feature)` pairs, reference-cell
//! claims and the snapshot cell-id space all stay valid across a
//! rebalance. Everything is deterministic: all ranks derive the same
//! histogram (allreduced), hence the same decision, the same new
//! decomposition, and the same moved-cell diff.
//!
//! Knob: [`REBALANCE_ENV`] (`MVIO_REBALANCE`) — `off`/`0` disables,
//! `on` enables at [`DEFAULT_REBALANCE_THRESHOLD`], a number pins the
//! imbalance threshold. See `docs/KNOBS.md`.

use crate::decomp::{imbalance_ratio, AdaptiveBisection, SpatialDecomposition};
use crate::exchange::{
    serialize_record, ExchangeChunk, ExchangeOptions, ExchangePlan, ExchangeStats,
};
use crate::grid::UniformGrid;
use crate::{CoreError, Feature, Result};
use mvio_msim::{Comm, ReduceOp, Work};

/// Environment knob selecting the rebalance policy: unset, `0` or `off`
/// disables online rebalancing; `on` enables it at
/// [`DEFAULT_REBALANCE_THRESHOLD`]; a number pins the imbalance
/// threshold (clamped to ≥ 1). CI runs the suite with the knob both off
/// and on.
pub const REBALANCE_ENV: &str = "MVIO_REBALANCE";

/// Imbalance threshold used when [`REBALANCE_ENV`] is `on`: rebalance as
/// soon as the estimated max/mean per-rank load reaches 1.5.
pub const DEFAULT_REBALANCE_THRESHOLD: f64 = 1.5;

/// Online-rebalance sizing policy (the `MVIO_REBALANCE` knob's typed
/// form, mirroring `ServeCache` / `ExchangeChunk`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RebalancePolicy {
    /// Resolve through [`REBALANCE_ENV`] (the default); unset means off.
    #[default]
    Auto,
    /// Never rebalance (updates still apply).
    Off,
    /// Rebalance when the measured imbalance ratio reaches this value.
    Threshold(f64),
}

/// Parses a [`REBALANCE_ENV`] value; `None` = rebalancing off.
fn parse_rebalance(v: &str) -> Option<f64> {
    let t = v.trim();
    if t == "0" || t.eq_ignore_ascii_case("off") {
        return None;
    }
    if t.eq_ignore_ascii_case("on") {
        return Some(DEFAULT_REBALANCE_THRESHOLD);
    }
    let n: f64 = t.parse().unwrap_or_else(|_| {
        panic!("invalid {REBALANCE_ENV} value {v:?}: expected a threshold, `on`, or 0/off")
    });
    Some(n.max(1.0))
}

impl RebalancePolicy {
    /// The imbalance threshold this policy resolves to (`None` =
    /// rebalancing off).
    ///
    /// # Panics
    ///
    /// `Auto` panics on an unparseable [`REBALANCE_ENV`] value —
    /// silently serving statically under a typo'd knob would make every
    /// benchmark measure the wrong configuration (same contract as
    /// `ServeCache::resolve`).
    pub fn resolve(self) -> Option<f64> {
        match self {
            RebalancePolicy::Auto => parse_rebalance(&std::env::var(REBALANCE_ENV).ok()?),
            RebalancePolicy::Off => None,
            RebalancePolicy::Threshold(t) => Some(t.max(1.0)),
        }
    }
}

/// One streaming mutation against a resident partition.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Add a feature: replicas are installed in every overlapping cell,
    /// exactly as ingest would have placed them.
    Insert(Feature),
    /// Remove one feature matching this geometry + userdata exactly
    /// (all of its cell replicas). Deleting an absent feature is a
    /// no-op, mirroring the fresh-ingest semantics of a dataset that
    /// never contained it.
    Delete(Feature),
}

/// Per-rank counters for one [`apply_updates`] call.
#[derive(Debug, Clone, Default)]
pub struct UpdateStats {
    /// Updates this rank submitted in the batch.
    pub submitted: u64,
    /// Replicas installed locally (received inserts, cell-replicated).
    pub inserted_replicas: u64,
    /// Replicas removed locally (received deletes that matched).
    pub deleted_replicas: u64,
    /// Received delete records that matched no resident replica.
    pub missing_deletes: u64,
    /// Exchange counters for the insert trip.
    pub insert_exchange: ExchangeStats,
    /// Exchange counters for the delete trip.
    pub delete_exchange: ExchangeStats,
}

/// Whether `cell` is the reference cell of a feature with envelope
/// `mbr` — the engine's kNN dedup rule, shared here so the drift
/// histogram counts each feature exactly once globally (degenerate
/// reference corners fall back to the lowest overlapping cell).
fn is_reference(sd: &dyn SpatialDecomposition, cell: u32, mbr: &mvio_geom::Rect) -> bool {
    match sd.reference_cell(mbr) {
        Some(c) => c == cell,
        None => sd.cells_for_rect_vec(mbr).first() == Some(&cell),
    }
}

/// Element-wise `i64` sum behind the drift-delta allreduce.
struct SumDeltas;

impl ReduceOp<Vec<i64>> for SumDeltas {
    fn combine(&self, a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }
}

/// Incrementally-maintained local per-cell histogram of *reference*
/// features — the same count-per-cell signal [`AdaptiveBisection`]
/// bisects at ingest time, kept live across [`apply_updates`] calls so a
/// rebalance decision never needs a full local rescan. Each feature is
/// counted once globally, in the cell owning its reference corner, so
/// the element-wise allreduce of every rank's tracker is the exact
/// global feature histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftTracker {
    counts: Vec<i64>,
}

impl DriftTracker {
    /// An all-zero tracker over `num_cells` cells.
    pub fn new(num_cells: u32) -> Self {
        DriftTracker {
            counts: vec![0; num_cells as usize],
        }
    }

    /// Rebuilds the tracker from a resident replica set (used at engine
    /// construction and after a migration rewires cell ownership).
    pub fn rebuild(sd: &dyn SpatialDecomposition, owned: &[(u32, Feature)]) -> Self {
        let mut t = DriftTracker::new(sd.num_cells());
        for (cell, f) in owned {
            if is_reference(sd, *cell, &f.geometry.envelope()) {
                t.counts[*cell as usize] += 1;
            }
        }
        t
    }

    /// Applies one replica arrival/removal: bumps the cell's count when
    /// the replica is its feature's reference copy.
    fn record(&mut self, sd: &dyn SpatialDecomposition, cell: u32, f: &Feature, delta: i64) {
        if is_reference(sd, cell, &f.geometry.envelope()) {
            self.counts[cell as usize] += delta;
        }
    }

    /// The global per-cell feature histogram: one element-wise allreduce
    /// over every rank's local tracker. Collective — every rank must
    /// call it together; all ranks receive the identical histogram
    /// (negative transients clamp to zero).
    pub fn global_histogram(&self, comm: &mut Comm) -> Vec<u64> {
        let counts = comm.labeled("rebalance.histogram", |c| {
            c.allreduce(
                self.counts.clone(),
                self.counts.len() as u64 * 8,
                &SumDeltas,
            )
        });
        counts.into_iter().map(|n| n.max(0) as u64).collect()
    }

    /// After a migration under `sd`, the local histogram is exactly the
    /// global one restricted to the cells this rank now owns (reference
    /// replicas moved with their cells).
    fn adopt(&mut self, comm: &Comm, sd: &dyn SpatialDecomposition, global: &[u64]) {
        let me = comm.rank();
        for (cell, slot) in self.counts.iter_mut().enumerate() {
            *slot = if sd.cell_to_rank(cell as u32) == me {
                global[cell] as i64
            } else {
                0
            };
        }
    }
}

/// Applies a batch of streaming updates to a resident partition.
/// Collective — every rank must call it together, each with its own
/// (possibly empty) batch.
///
/// Inserts and deletes are routed to the ranks owning their overlapping
/// cells over two staged [`ExchangePlan`] runs (inserts first, then
/// deletes, so a batch that inserts a feature and deletes it again
/// resolves to its absence on every rank). Received records are applied
/// to `owned` inside the exchange sinks, overlapped with the rounds
/// still in flight; `tracker`, when supplied, absorbs every applied
/// reference-replica delta.
///
/// Validation is symmetric: an insert with a non-finite/empty envelope
/// or one not intersecting the resident bounds (the fixed cell tiling
/// could only drop it silently) rejects the whole call on every rank
/// with [`CoreError::InvalidOptions`] before anything ships, and the
/// partition is left untouched world-wide.
pub fn apply_updates(
    comm: &mut Comm,
    sd: &dyn SpatialDecomposition,
    owned: &mut Vec<(u32, Feature)>,
    updates: &[Update],
    chunk: ExchangeChunk,
    mut tracker: Option<&mut DriftTracker>,
) -> Result<UpdateStats> {
    let p = comm.size();
    let bounds = sd.bounds();

    // Serialize both trips up front; any local failure (out-of-bounds
    // insert, oversized record) folds into one symmetric rejection.
    let mut local_err: Option<CoreError> = None;
    let mut inserts = crate::exchange::SerializedBatch::empty(p);
    let mut deletes = crate::exchange::SerializedBatch::empty(p);
    let mut scratch = Vec::new();
    let mut cells: Vec<u32> = Vec::new();
    let mut routed_bytes = 0u64;
    'updates: for u in updates {
        let (f, batch) = match u {
            Update::Insert(f) => {
                let env = f.geometry.envelope();
                if env.is_empty() || !env.intersects(&bounds) {
                    local_err = Some(CoreError::InvalidOptions(format!(
                        "insert outside the resident bounds {bounds:?} (envelope {env:?}) \
                         cannot be indexed by the fixed cell tiling"
                    )));
                    break 'updates;
                }
                (f, &mut inserts)
            }
            // Deletes of never-indexed features route nowhere = no-op.
            Update::Delete(f) => (f, &mut deletes),
        };
        sd.cells_for_rect(&f.geometry.envelope(), &mut cells);
        for &cell in &cells {
            let dest = sd.cell_to_rank(cell);
            if let Err(e) = serialize_record(cell, f, &mut scratch, &mut batch.bufs[dest]) {
                local_err = Some(e);
                break 'updates;
            }
            batch.records[dest] += 1;
        }
    }
    comm.charge(Work::MbrTests {
        n: updates.len() as u64,
    });
    for b in inserts.bufs.iter().chain(deletes.bufs.iter()) {
        routed_bytes += b.len() as u64;
    }
    comm.charge(Work::SerializeGeoms {
        n: inserts.records.iter().sum::<u64>() + deletes.records.iter().sum::<u64>(),
        bytes: routed_bytes,
    });

    let bad_ranks = comm.labeled("rebalance.status", |c| {
        c.allreduce_u64(u64::from(local_err.is_some()), |a, b| a + b)
    });
    if bad_ranks > 0 {
        return Err(local_err.unwrap_or_else(|| {
            CoreError::InvalidOptions(format!(
                "update batch aborted: {bad_ranks} rank(s) submitted invalid updates"
            ))
        }));
    }

    let mut stats = UpdateStats {
        submitted: updates.len() as u64,
        ..Default::default()
    };
    let plan = ExchangePlan::new(comm, &ExchangeOptions::with_chunk(chunk));

    // Trip 1: inserts land as fresh replicas.
    stats.insert_exchange = comm.labeled("rebalance.inserts", |c| {
        plan.run_batch_rounds_ctx(c, inserts, &mut |_, _round, per_src| {
            for records in per_src {
                for (cell, f) in records {
                    if let Some(t) = tracker.as_deref_mut() {
                        t.record(sd, cell, &f, 1);
                    }
                    owned.push((cell, f));
                    stats.inserted_replicas += 1;
                }
            }
            Ok(())
        })
    })?;

    // Trip 2: each delete record removes one matching resident replica.
    stats.delete_exchange = comm.labeled("rebalance.deletes", |c| {
        plan.run_batch_rounds_ctx(c, deletes, &mut |_, _round, per_src| {
            for records in per_src {
                for (cell, f) in records {
                    match owned.iter().position(|(oc, of)| *oc == cell && *of == f) {
                        Some(at) => {
                            owned.swap_remove(at);
                            if let Some(t) = tracker.as_deref_mut() {
                                t.record(sd, cell, &f, -1);
                            }
                            stats.deleted_replicas += 1;
                        }
                        None => stats.missing_deletes += 1,
                    }
                }
            }
            Ok(())
        })
    })?;
    Ok(stats)
}

/// Per-rank outcome of one [`migrate_cells`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationStats {
    /// Cells whose owner differs between the two maps (identical on
    /// every rank — both decompositions are replicated).
    pub moved_cells: u64,
    /// Replicas this rank shipped away.
    pub shipped_records: u64,
    /// Wire bytes this rank shipped away.
    pub shipped_bytes: u64,
    /// Exchange counters for the migration trip (all zero when no cell
    /// moved — the exchange is skipped entirely).
    pub exchange: ExchangeStats,
}

/// Rewires a resident partition from decomposition `from` to `to` by
/// shipping **only the replicas of cells whose owner changed** — the
/// diff of the two `cell_to_rank` maps — through the staged exchange.
/// Collective — every rank must call it together; all ranks derive the
/// identical moved-cell diff from the replicated decompositions, and
/// when the diff is empty the call returns immediately without posting
/// any collective (and without touching a byte).
///
/// Both decompositions must tile the same cell space (same bounds, same
/// grid, same world size): the whole point of cell-granular rebalancing
/// is that `(cell, feature)` pairs survive unchanged. A mismatch is
/// rejected symmetrically with [`CoreError::InvalidOptions`].
pub fn migrate_cells(
    comm: &mut Comm,
    from: &dyn SpatialDecomposition,
    to: &dyn SpatialDecomposition,
    owned: &mut Vec<(u32, Feature)>,
    chunk: ExchangeChunk,
) -> Result<MigrationStats> {
    if from.grid_spec() != to.grid_spec()
        || from.bounds() != to.bounds()
        || from.num_ranks() != to.num_ranks()
    {
        // Symmetric: decompositions are replicated, so every rank takes
        // this branch together and nobody is stranded in a collective.
        return Err(CoreError::InvalidOptions(format!(
            "cell-diff migration needs both decompositions over the same cell space: \
             {:?}/{:?} cells, {:?} vs {:?}, {} vs {} ranks",
            from.grid_spec(),
            to.grid_spec(),
            from.bounds(),
            to.bounds(),
            from.num_ranks(),
            to.num_ranks()
        )));
    }
    let mut stats = MigrationStats::default();
    let moved: Vec<bool> = (0..from.num_cells())
        .map(|c| from.cell_to_rank(c) != to.cell_to_rank(c))
        .collect();
    stats.moved_cells = moved.iter().filter(|&&m| m).count() as u64;
    if stats.moved_cells == 0 {
        return Ok(stats);
    }

    // Split the resident set: replicas in moved cells serialize toward
    // their new owner, everything else stays put untouched.
    let p = comm.size();
    let mut batch = crate::exchange::SerializedBatch::empty(p);
    let mut scratch = Vec::new();
    let mut kept = Vec::with_capacity(owned.len());
    for (cell, f) in owned.drain(..) {
        if moved[cell as usize] {
            let dest = to.cell_to_rank(cell);
            serialize_record(cell, &f, &mut scratch, &mut batch.bufs[dest])?;
            batch.records[dest] += 1;
            stats.shipped_records += 1;
        } else {
            kept.push((cell, f));
        }
    }
    *owned = kept;
    stats.shipped_bytes = batch.bufs.iter().map(|b| b.len() as u64).sum();
    comm.charge(Work::SerializeGeoms {
        n: stats.shipped_records,
        bytes: stats.shipped_bytes,
    });

    let plan = ExchangePlan::new(comm, &ExchangeOptions::with_chunk(chunk));
    let (received, xstats) = comm.labeled("rebalance.migrate", |c| plan.run_batch(c, batch))?;
    owned.extend(received);
    stats.exchange = xstats;
    Ok(stats)
}

/// Per-rank outcome of one [`Rebalancer::maybe_rebalance`] call.
#[derive(Debug, Clone, Default)]
pub struct RebalanceReport {
    /// Whether the threshold tripped and a migration ran.
    pub rebalanced: bool,
    /// Estimated max/mean per-rank load before the call (from the
    /// allreduced drift histogram under the old decomposition).
    pub imbalance_before: f64,
    /// Estimated imbalance under the decomposition in force after the
    /// call (equal to `imbalance_before` when nothing tripped).
    pub imbalance_after: f64,
    /// Migration counters ([`MigrationStats::default`] when nothing
    /// tripped).
    pub migration: MigrationStats,
}

/// Folds the global per-cell histogram into per-rank loads under `sd`.
fn per_rank_loads(sd: &dyn SpatialDecomposition, hist: &[u64]) -> Vec<u64> {
    let mut loads = vec![0u64; sd.num_ranks()];
    for (cell, &n) in hist.iter().enumerate() {
        loads[sd.cell_to_rank(cell as u32)] += n;
    }
    loads
}

/// The online-rebalance driver: owns the imbalance threshold and the
/// live [`DriftTracker`], and decides — identically on every rank —
/// when a drifted partition is worth re-decomposing.
#[derive(Debug)]
pub struct Rebalancer {
    threshold: f64,
    tracker: DriftTracker,
}

impl Rebalancer {
    /// Builds a rebalancer over an existing resident partition,
    /// initializing the drift histogram from the owned replicas.
    pub fn new(threshold: f64, sd: &dyn SpatialDecomposition, owned: &[(u32, Feature)]) -> Self {
        Rebalancer {
            threshold: threshold.max(1.0),
            tracker: DriftTracker::rebuild(sd, owned),
        }
    }

    /// [`Rebalancer::new`] gated on a policy: `None` when the policy
    /// resolves to off (panics on an unparseable [`REBALANCE_ENV`], see
    /// [`RebalancePolicy::resolve`]).
    pub fn from_policy(
        policy: RebalancePolicy,
        sd: &dyn SpatialDecomposition,
        owned: &[(u32, Feature)],
    ) -> Option<Self> {
        policy.resolve().map(|t| Self::new(t, sd, owned))
    }

    /// The imbalance threshold in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The live drift histogram (updated by [`apply_updates`] via the
    /// `tracker` parameter).
    pub fn tracker_mut(&mut self) -> &mut DriftTracker {
        &mut self.tracker
    }

    /// Measures the drifted load balance and, when the max/mean ratio
    /// has reached the threshold, re-bisects the histogram into a fresh
    /// [`AdaptiveBisection`] over the *same* cell tiling and migrates
    /// the moved cells ([`migrate_cells`]), replacing `sd` in place.
    /// Collective — every rank must call it together: the decision is a
    /// pure function of the allreduced histogram, so all ranks take the
    /// same branch.
    pub fn maybe_rebalance(
        &mut self,
        comm: &mut Comm,
        sd: &mut Box<dyn SpatialDecomposition>,
        owned: &mut Vec<(u32, Feature)>,
        chunk: ExchangeChunk,
    ) -> Result<RebalanceReport> {
        let hist = self.tracker.global_histogram(comm);
        let imbalance_before = imbalance_ratio(&per_rank_loads(&**sd, &hist));
        let mut report = RebalanceReport {
            rebalanced: false,
            imbalance_before,
            imbalance_after: imbalance_before,
            migration: MigrationStats::default(),
        };
        if imbalance_before < self.threshold {
            return Ok(report);
        }
        let grid = UniformGrid::try_new(sd.bounds(), sd.grid_spec())?;
        // Align the fresh bisection's rank labels to the outgoing owner
        // map before diffing: balance is label-invariant, but migration
        // cost is not, and recursion-order labels would otherwise move
        // cells whose region barely changed.
        let next =
            AdaptiveBisection::from_counts(grid, &hist, sd.num_ranks()).aligned_to(&**sd, &hist);
        let imbalance_after = imbalance_ratio(&per_rank_loads(&next, &hist));
        if imbalance_after >= imbalance_before {
            // The histogram offers no better cut (e.g. one cell holds
            // everything); keep the current decomposition rather than
            // paying a migration for nothing. Symmetric: same histogram,
            // same verdict everywhere.
            return Ok(report);
        }
        report.migration = migrate_cells(comm, &**sd, &next, owned, chunk)?;
        *sd = Box::new(next);
        self.tracker.adopt(comm, &**sd, &hist);
        report.rebalanced = true;
        report.imbalance_after = imbalance_after;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::grid::{CellMap, GridSpec};
    use mvio_geom::{Geometry, Point, Rect};
    use mvio_msim::{Topology, World, WorldConfig};

    fn grid(side: u32, world: f64) -> UniformGrid {
        UniformGrid::new(Rect::new(0.0, 0.0, world, world), GridSpec::square(side))
    }

    fn pt(x: f64, y: f64, tag: &str) -> Feature {
        Feature::with_userdata(Geometry::Point(Point::new(x, y)), tag)
    }

    /// Replicas each rank would own if `features` were freshly ingested
    /// under `sd`.
    fn fresh_owned(
        sd: &dyn SpatialDecomposition,
        features: &[Feature],
        rank: usize,
    ) -> Vec<(u32, Feature)> {
        let mut owned = Vec::new();
        for f in features {
            for cell in sd.cells_for_rect_vec(&f.geometry.envelope()) {
                if sd.cell_to_rank(cell) == rank {
                    owned.push((cell, f.clone()));
                }
            }
        }
        owned
    }

    fn sorted(mut v: Vec<(u32, Feature)>) -> Vec<(u32, String)> {
        v.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.userdata.cmp(&b.1.userdata)));
        v.into_iter().map(|(c, f)| (c, f.userdata)).collect()
    }

    #[test]
    fn parse_rebalance_accepts_the_documented_values() {
        assert_eq!(parse_rebalance("off"), None);
        assert_eq!(parse_rebalance("0"), None);
        assert_eq!(parse_rebalance("on"), Some(DEFAULT_REBALANCE_THRESHOLD));
        assert_eq!(parse_rebalance("2.5"), Some(2.5));
        assert_eq!(parse_rebalance("0.5"), Some(1.0)); // clamped
        assert_eq!(RebalancePolicy::Off.resolve(), None);
        assert_eq!(RebalancePolicy::Threshold(3.0).resolve(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "invalid MVIO_REBALANCE value")]
    fn parse_rebalance_panics_on_garbage() {
        parse_rebalance("sometimes");
    }

    #[test]
    fn updates_converge_to_a_fresh_ingest_of_the_final_dataset() {
        let out = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let sd = UniformDecomposition::new(grid(4, 8.0), CellMap::RoundRobin, comm.size());
            let base: Vec<Feature> = vec![pt(1.0, 1.0, "a"), pt(6.5, 6.5, "b")];
            let mut owned = fresh_owned(&sd, &base, comm.rank());
            let mut tracker = DriftTracker::rebuild(&sd, &owned);
            // Rank 0 inserts, rank 1 deletes; everyone participates.
            let updates: Vec<Update> = match comm.rank() {
                0 => vec![
                    Update::Insert(pt(3.2, 3.2, "c")),
                    Update::Insert(pt(6.5, 6.5, "d")),
                ],
                1 => vec![Update::Delete(pt(1.0, 1.0, "a"))],
                _ => Vec::new(),
            };
            let stats = apply_updates(
                comm,
                &sd,
                &mut owned,
                &updates,
                ExchangeChunk::Bytes(64),
                Some(&mut tracker),
            )
            .unwrap();
            let want = fresh_owned(
                &sd,
                &[pt(6.5, 6.5, "b"), pt(3.2, 3.2, "c"), pt(6.5, 6.5, "d")],
                comm.rank(),
            );
            assert_eq!(sorted(owned.clone()), sorted(want));
            assert_eq!(stats.missing_deletes, 0);
            assert_eq!(tracker, DriftTracker::rebuild(&sd, &owned));
            stats.inserted_replicas + stats.deleted_replicas
        });
        // Point inserts land in exactly one cell each; the delete removed
        // one replica. 2 inserts + 1 delete = 3 applied replicas total.
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn out_of_bounds_insert_rejects_symmetrically_and_leaves_state_alone() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let sd = UniformDecomposition::new(grid(2, 4.0), CellMap::RoundRobin, comm.size());
            let base = vec![pt(1.0, 1.0, "a")];
            let mut owned = fresh_owned(&sd, &base, comm.rank());
            let before = owned.clone();
            // Only rank 0 submits the bad insert; both must reject.
            let updates = if comm.rank() == 0 {
                vec![Update::Insert(pt(99.0, 99.0, "far"))]
            } else {
                vec![Update::Insert(pt(2.0, 2.0, "fine"))]
            };
            let err = apply_updates(
                comm,
                &sd,
                &mut owned,
                &updates,
                ExchangeChunk::Unlimited,
                None,
            )
            .err();
            assert_eq!(owned, before, "rejected batch must not mutate");
            matches!(err, Some(CoreError::InvalidOptions(_)))
        });
        assert_eq!(out, vec![true, true]);
    }

    #[test]
    fn deleting_an_absent_feature_is_a_counted_noop() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let sd = UniformDecomposition::new(grid(2, 4.0), CellMap::RoundRobin, comm.size());
            let mut owned = fresh_owned(&sd, &[pt(1.0, 1.0, "a")], comm.rank());
            let updates = if comm.rank() == 0 {
                vec![Update::Delete(pt(1.0, 1.0, "ghost"))]
            } else {
                Vec::new()
            };
            let stats = apply_updates(
                comm,
                &sd,
                &mut owned,
                &updates,
                ExchangeChunk::Unlimited,
                None,
            )
            .unwrap();
            (stats.missing_deletes, owned.len())
        });
        let missing: u64 = out.iter().map(|(m, _)| m).sum();
        assert_eq!(missing, 1);
    }

    #[test]
    fn migration_with_unchanged_owner_map_moves_zero_bytes() {
        let out = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let sd = UniformDecomposition::new(grid(4, 8.0), CellMap::RoundRobin, comm.size());
            let same = UniformDecomposition::new(grid(4, 8.0), CellMap::RoundRobin, comm.size());
            let features: Vec<Feature> = (0..12)
                .map(|i| pt(i as f64 * 0.6, 3.0, &format!("f{i}")))
                .collect();
            let mut owned = fresh_owned(&sd, &features, comm.rank());
            let before = owned.clone();
            let stats =
                migrate_cells(comm, &sd, &same, &mut owned, ExchangeChunk::Unlimited).unwrap();
            assert_eq!(owned, before);
            (
                stats.moved_cells,
                stats.shipped_bytes,
                stats.exchange.bytes_sent,
                stats.exchange.rounds,
            )
        });
        for (moved, shipped, wire, rounds) in out {
            assert_eq!(moved, 0);
            assert_eq!(shipped, 0, "identical owner maps must ship nothing");
            assert_eq!(wire, 0);
            assert_eq!(rounds, 0, "no collective is posted for an empty diff");
        }
    }

    #[test]
    fn migration_rejects_mismatched_cell_spaces() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let a = UniformDecomposition::new(grid(4, 8.0), CellMap::RoundRobin, comm.size());
            let b = UniformDecomposition::new(grid(2, 8.0), CellMap::RoundRobin, comm.size());
            let mut owned = Vec::new();
            migrate_cells(comm, &a, &b, &mut owned, ExchangeChunk::Unlimited)
                .err()
                .map(|e| matches!(e, CoreError::InvalidOptions(_)))
        });
        assert_eq!(out, vec![Some(true), Some(true)]);
    }

    #[test]
    fn rebalance_trips_on_a_hotspot_and_migrates_only_the_diff() {
        let out = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            // Start balanced: one feature per cell, block map.
            let sd: Box<dyn SpatialDecomposition> = Box::new(UniformDecomposition::new(
                grid(8, 8.0),
                CellMap::Block,
                comm.size(),
            ));
            let base: Vec<Feature> = (0..64)
                .map(|c| {
                    let r = sd.cell_rect(c);
                    pt(
                        (r.min_x + r.max_x) / 2.0,
                        (r.min_y + r.max_y) / 2.0,
                        &format!("base{c}"),
                    )
                })
                .collect();
            let mut sd = sd;
            let mut owned = fresh_owned(&*sd, &base, comm.rank());
            let mut reb = Rebalancer::new(1.5, &*sd, &owned);
            // Pour a hotspot over the bottom-left 3×3-cell patch (rank
            // 0's block rows), spread in 2D so bisection has cuts to use.
            let hotspot: Vec<Update> = (0..128)
                .map(|i| {
                    let x = 0.15 + (i % 12) as f64 * 0.24;
                    let y = 0.15 + ((i / 12) % 12) as f64 * 0.24;
                    Update::Insert(pt(x, y, &format!("h{i}")))
                })
                .collect();
            let mine = if comm.rank() == 0 {
                hotspot
            } else {
                Vec::new()
            };
            apply_updates(
                comm,
                &*sd,
                &mut owned,
                &mine,
                ExchangeChunk::Bytes(256),
                Some(reb.tracker_mut()),
            )
            .unwrap();
            let report = reb
                .maybe_rebalance(comm, &mut sd, &mut owned, ExchangeChunk::Bytes(256))
                .unwrap();
            assert!(report.rebalanced, "hotspot must trip the 1.5 threshold");
            assert!(
                report.imbalance_after < report.imbalance_before,
                "{} -> {}",
                report.imbalance_before,
                report.imbalance_after
            );
            assert!(
                report.migration.moved_cells < sd.num_cells() as u64,
                "cell-diff migration must not move every cell"
            );
            // The tracker survives the migration exactly: a rebuild from
            // the migrated replicas matches the adopted histogram.
            assert_eq!(*reb.tracker_mut(), DriftTracker::rebuild(&*sd, &owned));
            // Replicas still live on the ranks that own their cells.
            for (cell, _) in &owned {
                assert_eq!(sd.cell_to_rank(*cell), comm.rank());
            }
            (report.imbalance_before, report.imbalance_after, owned.len())
        });
        let total: usize = out.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, 192, "64 base + 128 hotspot point replicas");
        for (before, after, _) in out {
            assert!(before > 2.0, "static imbalance should be severe: {before}");
            assert!(after <= 1.5, "post-rebalance imbalance {after} > 1.5");
        }
    }

    #[test]
    fn below_threshold_is_a_cheap_noop() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut sd: Box<dyn SpatialDecomposition> = Box::new(UniformDecomposition::new(
                grid(2, 4.0),
                CellMap::RoundRobin,
                comm.size(),
            ));
            let features = vec![pt(1.0, 1.0, "a"), pt(3.0, 3.0, "b")];
            let mut owned = fresh_owned(&*sd, &features, comm.rank());
            let before = owned.clone();
            let mut reb = Rebalancer::new(4.0, &*sd, &owned);
            let report = reb
                .maybe_rebalance(comm, &mut sd, &mut owned, ExchangeChunk::Unlimited)
                .unwrap();
            assert!(!report.rebalanced);
            assert_eq!(report.imbalance_before, report.imbalance_after);
            assert_eq!(owned, before);
            report.migration.shipped_bytes
        });
        assert_eq!(out, vec![0, 0]);
    }
}
