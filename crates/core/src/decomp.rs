//! Pluggable spatial decompositions (paper §4, Figures 1–2, and the
//! "locality-aware partitioning" the paper lists as future work in §5.2).
//!
//! The paper hardwires one policy: a uniform `nx × ny` grid over the
//! `MPI_UNION`-allreduced global extent, with round-robin cell→rank
//! declustering. That policy collapses on skewed inputs — "real data
//! distribution is often skewed" (§1) — because a hotspot that lands in
//! one cell lands on one rank. This module abstracts the decomposition
//! behind the [`SpatialDecomposition`] trait so the exchange, pipeline,
//! filter-refine and join layers are policy-agnostic, and provides three
//! implementations:
//!
//! * [`UniformDecomposition`] — the paper's grid + [`CellMap`] policy,
//!   unchanged (bit-identical outputs to the pre-trait code);
//! * [`HilbertDecomposition`] — the same uniform cells, but cell→rank
//!   assignment follows Hilbert-curve order in equal contiguous runs, so
//!   each rank owns a spatially compact region (better exchange locality
//!   than round-robin, better balance than `CellMap::Block`);
//! * [`AdaptiveBisection`] — a skew-aware recursive bisection over a
//!   per-cell feature histogram (allreduced across ranks), equalizing
//!   *estimated feature counts* per rank rather than cell counts.
//!
//! Every decomposition is a pure function of its inputs and
//! configuration: two ranks (or two runs) building from the same global
//! data produce the same object, which is what keeps the collective
//! builders deterministic. The proptest suite asserts the shared oracle:
//! each feature's reference cell is owned by exactly one rank, for every
//! policy.

use crate::grid::{CellMap, GridSpec, UniformGrid};
use crate::Feature;
use mvio_geom::curve;
use mvio_geom::index::RTree;
use mvio_geom::Rect;
use mvio_msim::{Comm, ReduceOp, Work};

/// Environment variable consulted by [`DecompPolicy::from_env`]:
/// `uniform`, `hilbert` or `adaptive`. CI pins each value and runs the
/// full suite under it.
pub const DECOMP_ENV: &str = "MVIO_DECOMP";

/// A global spatial decomposition: a tiling of the global extent into
/// cells plus an assignment of cells to ranks. Built collectively (every
/// rank holds an identical copy) and consumed by the exchange, the
/// streaming ingest pipeline, and the filter-refine framework.
pub trait SpatialDecomposition: Send + Sync + std::fmt::Debug {
    /// The global extent tiled by the cells.
    fn bounds(&self) -> Rect;

    /// Total number of cells.
    fn num_cells(&self) -> u32;

    /// The `cells_x × cells_y` resolution of the cell tiling this
    /// decomposition assigns ranks over (the *effective* grid: adaptive
    /// bisection reports its refined histogram grid). Together with
    /// [`SpatialDecomposition::bounds`] this identifies the cell-id
    /// space, which is what the binary snapshot format records so a
    /// persisted partitioning can be re-routed under any rank count.
    fn grid_spec(&self) -> GridSpec;

    /// World size this decomposition was built for.
    fn num_ranks(&self) -> usize;

    /// The rectangle of cell `cell`.
    fn cell_rect(&self, cell: u32) -> Rect;

    /// Cells whose rectangles intersect `rect`, appended to `out` in
    /// ascending cell-id order (the buffer is cleared first so hot loops
    /// can reuse one allocation).
    fn cells_for_rect(&self, rect: &Rect, out: &mut Vec<u32>);

    /// The rank owning `cell`.
    fn cell_to_rank(&self, cell: u32) -> usize;

    /// Whether `cell` touches the global max-x / max-y boundary. The
    /// reference-point dedup ([`crate::framework::claims_reference`])
    /// closes the outer max edges on these cells, where no neighbouring
    /// cell exists to pick a boundary point up.
    fn cell_on_max_edge(&self, cell: u32) -> (bool, bool);

    /// Convenience: [`SpatialDecomposition::cells_for_rect`] into a fresh
    /// vector.
    fn cells_for_rect_vec(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.cells_for_rect(rect, &mut out);
        out
    }

    /// All cells owned by `rank`, ascending.
    fn cells_of_rank(&self, rank: usize) -> Vec<u32> {
        (0..self.num_cells())
            .filter(|&c| self.cell_to_rank(c) == rank)
            .collect()
    }

    /// The single cell containing `rect`'s min corner (its *reference
    /// cell*, the anchor of the duplicate-avoidance rule), or `None` when
    /// the corner lies outside the decomposition bounds.
    fn reference_cell(&self, rect: &Rect) -> Option<u32> {
        if rect.is_empty() {
            return None;
        }
        let corner = Rect::new(rect.min_x, rect.min_y, rect.min_x, rect.min_y);
        let mut cells = Vec::with_capacity(1);
        self.cells_for_rect(&corner, &mut cells);
        debug_assert!(cells.len() <= 1, "a point maps to at most one cell");
        cells.first().copied()
    }
}

/// The paper's decomposition: a [`UniformGrid`] plus a [`CellMap`]
/// cell→rank policy. The first — and behaviour-preserving — implementor
/// of [`SpatialDecomposition`].
#[derive(Debug, Clone, PartialEq)]
pub struct UniformDecomposition {
    grid: UniformGrid,
    map: CellMap,
    ranks: usize,
}

impl UniformDecomposition {
    /// Wraps a grid and a cell map for a `ranks`-rank world.
    pub fn new(grid: UniformGrid, map: CellMap, ranks: usize) -> Self {
        assert!(ranks > 0, "decomposition needs at least one rank");
        UniformDecomposition { grid, map, ranks }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// The cell→rank policy.
    pub fn map(&self) -> CellMap {
        self.map
    }
}

impl SpatialDecomposition for UniformDecomposition {
    fn bounds(&self) -> Rect {
        self.grid.bounds()
    }

    fn num_cells(&self) -> u32 {
        self.grid.num_cells()
    }

    fn grid_spec(&self) -> GridSpec {
        self.grid.spec()
    }

    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn cell_rect(&self, cell: u32) -> Rect {
        self.grid.cell_rect(cell)
    }

    fn cells_for_rect(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.grid.cells_overlapping_into(rect, out);
    }

    fn cell_to_rank(&self, cell: u32) -> usize {
        self.map.rank_of(cell, self.grid.num_cells(), self.ranks)
    }

    fn cell_on_max_edge(&self, cell: u32) -> (bool, bool) {
        grid_max_edge(&self.grid, cell)
    }
}

/// Uniform cells assigned to ranks in **contiguous equal runs along the
/// Hilbert curve** through the cell grid: each rank owns a spatially
/// compact region with cell counts balanced to within one cell. Compared
/// to [`CellMap::RoundRobin`] this keeps exchange destinations local;
/// compared to [`CellMap::Block`] (contiguous row-major runs) the regions
/// are square-ish rather than thin stripes.
#[derive(Debug, Clone, PartialEq)]
pub struct HilbertDecomposition {
    grid: UniformGrid,
    ranks: usize,
    rank_of: Vec<u32>,
}

impl HilbertDecomposition {
    /// Builds the Hilbert run assignment for a `ranks`-rank world.
    pub fn new(grid: UniformGrid, ranks: usize) -> Self {
        assert!(ranks > 0, "decomposition needs at least one rank");
        let spec = grid.spec();
        let n = grid.num_cells();
        // Sort cell ids by their position along the Hilbert curve (cell
        // centers scaled into the curve's fixed-order lattice); ties —
        // possible when the grid outresolves the curve — break by cell id
        // so the order is total and deterministic.
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_by_key(|&c| {
            let col = c % spec.cells_x;
            let row = c / spec.cells_x;
            (
                curve::hilbert_key_cells(
                    crate::grid::scale_to_order(col, spec.cells_x),
                    crate::grid::scale_to_order(row, spec.cells_y),
                ),
                c,
            )
        });
        // Contiguous runs of near-equal length: the first `n % ranks`
        // ranks own one extra cell.
        let mut rank_of = vec![0u32; n as usize];
        let base = (n as usize) / ranks;
        let extra = (n as usize) % ranks;
        let mut at = 0usize;
        for r in 0..ranks {
            let len = base + usize::from(r < extra);
            for &cell in &order[at..at + len] {
                rank_of[cell as usize] = r as u32;
            }
            at += len;
        }
        HilbertDecomposition {
            grid,
            ranks,
            rank_of,
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }
}

impl SpatialDecomposition for HilbertDecomposition {
    fn bounds(&self) -> Rect {
        self.grid.bounds()
    }

    fn num_cells(&self) -> u32 {
        self.grid.num_cells()
    }

    fn grid_spec(&self) -> GridSpec {
        self.grid.spec()
    }

    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn cell_rect(&self, cell: u32) -> Rect {
        self.grid.cell_rect(cell)
    }

    fn cells_for_rect(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.grid.cells_overlapping_into(rect, out);
    }

    fn cell_to_rank(&self, cell: u32) -> usize {
        self.rank_of[cell as usize] as usize
    }

    fn cell_on_max_edge(&self, cell: u32) -> (bool, bool) {
        grid_max_edge(&self.grid, cell)
    }
}

/// Skew-aware decomposition: a fine uniform histogram grid whose cells
/// are assigned to ranks by **recursive bisection of the global per-cell
/// feature counts**, so every rank owns a contiguous rectangle of cells
/// holding a near-equal share of the estimated features. Built from a
/// cheap histogram pass (each feature's reference cell, allreduced via
/// the runtime) — the sampling analogue of the paper's extent allreduce.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBisection {
    grid: UniformGrid,
    ranks: usize,
    rank_of: Vec<u32>,
}

impl AdaptiveBisection {
    /// Builds the bisection from a global per-cell count histogram
    /// (`counts.len() == grid.num_cells()`). Pure and deterministic: the
    /// same histogram yields the same decomposition on every rank.
    pub fn from_counts(grid: UniformGrid, counts: &[u64], ranks: usize) -> Self {
        assert!(ranks > 0, "decomposition needs at least one rank");
        assert_eq!(
            counts.len(),
            grid.num_cells() as usize,
            "one count per cell"
        );
        let spec = grid.spec();
        let mut rank_of = vec![0u32; counts.len()];
        bisect(
            counts,
            spec.cells_x,
            CellRange {
                c0: 0,
                c1: spec.cells_x,
                r0: 0,
                r1: spec.cells_y,
            },
            0,
            ranks as u32,
            &mut rank_of,
        );
        AdaptiveBisection {
            grid,
            ranks,
            rank_of,
        }
    }

    /// The underlying histogram grid.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Relabels this bisection's ranks to maximize weighted cell overlap
    /// with `prev`'s owner map (same cell space required). Per-rank loads
    /// are invariant under a label permutation, so balance is untouched —
    /// but a from-scratch re-bisection numbers its regions by recursion
    /// order, which can hand almost every cell a new owner even where the
    /// cuts barely moved. Aligning labels first turns the owner diff into
    /// the *geometric* diff, which is what incremental migration ships.
    ///
    /// Greedy maximum-weight matching on the `(new rank, prev rank)`
    /// overlap matrix: exact for the common near-diagonal case,
    /// deterministic everywhere (ties resolve to the lowest rank pair).
    pub fn aligned_to(mut self, prev: &dyn SpatialDecomposition, weights: &[u64]) -> Self {
        debug_assert_eq!(prev.num_cells(), self.grid.num_cells(), "same cell space");
        debug_assert_eq!(weights.len(), self.rank_of.len(), "one weight per cell");
        let r = self.ranks;
        let mut overlap = vec![0u64; r * r];
        for (cell, &new_r) in self.rank_of.iter().enumerate() {
            let old_r = prev.cell_to_rank(cell as u32);
            if old_r < r {
                // `+ 1` keeps empty regions sticky to their old labels.
                overlap[new_r as usize * r + old_r] += weights[cell] + 1;
            }
        }
        let mut pairs: Vec<(u64, usize, usize)> = overlap
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, &w)| (w, i / r, i % r))
            .collect();
        pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut label = vec![usize::MAX; r];
        let mut taken = vec![false; r];
        for (_, new_r, old_r) in pairs {
            if label[new_r] == usize::MAX && !taken[old_r] {
                label[new_r] = old_r;
                taken[old_r] = true;
            }
        }
        let mut free = taken
            .iter()
            .enumerate()
            .filter(|(_, &t)| !t)
            .map(|(i, _)| i);
        for l in label.iter_mut() {
            if *l == usize::MAX {
                // audit: matching is a partial injection on r labels, so the
                // unmatched new ranks and the untaken old labels count the
                // same — `free` cannot run dry.
                *l = free.next().expect("one free label per unmatched rank");
            }
        }
        for nr in self.rank_of.iter_mut() {
            *nr = label[*nr as usize] as u32;
        }
        self
    }
}

impl SpatialDecomposition for AdaptiveBisection {
    fn bounds(&self) -> Rect {
        self.grid.bounds()
    }

    fn num_cells(&self) -> u32 {
        self.grid.num_cells()
    }

    fn grid_spec(&self) -> GridSpec {
        self.grid.spec()
    }

    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn cell_rect(&self, cell: u32) -> Rect {
        self.grid.cell_rect(cell)
    }

    fn cells_for_rect(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.grid.cells_overlapping_into(rect, out);
    }

    fn cell_to_rank(&self, cell: u32) -> usize {
        self.rank_of[cell as usize] as usize
    }

    fn cell_on_max_edge(&self, cell: u32) -> (bool, bool) {
        grid_max_edge(&self.grid, cell)
    }
}

/// A rectangle of cell indices, half-open on both axes.
#[derive(Debug, Clone, Copy)]
struct CellRange {
    c0: u32,
    c1: u32,
    r0: u32,
    r1: u32,
}

impl CellRange {
    fn width(&self) -> u32 {
        self.c1 - self.c0
    }

    fn height(&self) -> u32 {
        self.r1 - self.r0
    }
}

/// Recursively assigns `range` to ranks `lo..hi`, splitting the longer
/// axis at the count-balanced cut. Deterministic: ties in cut placement
/// resolve to the first (lowest-index) optimum.
fn bisect(counts: &[u64], cells_x: u32, range: CellRange, lo: u32, hi: u32, rank_of: &mut [u32]) {
    debug_assert!(lo < hi);
    if hi - lo == 1 || (range.width() <= 1 && range.height() <= 1) {
        // One rank left, or an unsplittable single cell: everything in
        // the range belongs to `lo` (surplus ranks own no cells).
        for row in range.r0..range.r1 {
            for col in range.c0..range.c1 {
                rank_of[(row * cells_x + col) as usize] = lo;
            }
        }
        return;
    }
    let ranks_left = (hi - lo) / 2;
    // Sum the counts along the split axis (the longer one, so regions
    // trend square; ties split columns).
    let split_cols = range.width() >= range.height();
    let lanes: Vec<u64> = if split_cols {
        (range.c0..range.c1)
            .map(|col| {
                (range.r0..range.r1)
                    .map(|row| counts[(row * cells_x + col) as usize])
                    .sum()
            })
            .collect()
    } else {
        (range.r0..range.r1)
            .map(|row| {
                (range.c0..range.c1)
                    .map(|col| counts[(row * cells_x + col) as usize])
                    .sum()
            })
            .collect()
    };
    let total: u64 = lanes.iter().sum();
    // Ideal share of the left sub-range. With an all-zero histogram fall
    // back to splitting the *cells* evenly (weight 1 per lane).
    let lane_count = lanes.len() as u64;
    let (target, weigh_cells) = if total == 0 {
        (lane_count * ranks_left as u64 / (hi - lo) as u64, true)
    } else {
        (total * ranks_left as u64 / (hi - lo) as u64, false)
    };
    let mut best_cut = 1usize;
    let mut best_err = u64::MAX;
    let mut prefix = 0u64;
    for (i, &lane) in lanes.iter().enumerate().take(lanes.len() - 1) {
        prefix += if weigh_cells { 1 } else { lane };
        let err = prefix.abs_diff(target);
        if err < best_err {
            best_err = err;
            best_cut = i + 1;
        }
    }
    let (left, right) = if split_cols {
        let cut = range.c0 + best_cut as u32;
        (
            CellRange { c1: cut, ..range },
            CellRange { c0: cut, ..range },
        )
    } else {
        let cut = range.r0 + best_cut as u32;
        (
            CellRange { r1: cut, ..range },
            CellRange { r0: cut, ..range },
        )
    };
    bisect(counts, cells_x, left, lo, lo + ranks_left, rank_of);
    bisect(counts, cells_x, right, lo + ranks_left, hi, rank_of);
}

/// Whether `cell` of `grid` lies in the last column / last row.
fn grid_max_edge(grid: &UniformGrid, cell: u32) -> (bool, bool) {
    let spec = grid.spec();
    let col = cell % spec.cells_x;
    let row = cell / spec.cells_x;
    (col == spec.cells_x - 1, row == spec.cells_y - 1)
}

/// Which decomposition family to build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecompPolicy {
    /// The paper's uniform grid with a [`CellMap`] cell→rank policy.
    Uniform(CellMap),
    /// Uniform cells in contiguous Hilbert-order runs.
    Hilbert,
    /// Skew-aware recursive bisection over a histogram grid `refine`×
    /// finer than the configured [`GridSpec`] (so hotspots inside one
    /// coarse cell can still be split across ranks).
    Adaptive {
        /// Histogram refinement factor (clamped to keep the cell count
        /// within the u32 id space; `0` behaves as `1`).
        refine: u32,
    },
}

impl DecompPolicy {
    /// The default skew-aware policy: adaptive bisection over an 8×-finer
    /// histogram.
    pub fn adaptive() -> Self {
        DecompPolicy::Adaptive { refine: 8 }
    }

    /// Resolves the policy from the [`DECOMP_ENV`] environment variable
    /// (`uniform` | `hilbert` | `adaptive`), defaulting to the paper's
    /// uniform grid with round-robin declustering. Unknown values fall
    /// back to the default so a typo'd knob degrades to paper behaviour
    /// rather than aborting a batch job.
    pub fn from_env() -> Self {
        match std::env::var(DECOMP_ENV).as_deref() {
            Ok("hilbert") => DecompPolicy::Hilbert,
            Ok("adaptive") => DecompPolicy::adaptive(),
            _ => DecompPolicy::Uniform(CellMap::RoundRobin),
        }
    }

    /// Short display name (used by experiment tables and JSON reports).
    pub fn name(&self) -> &'static str {
        match self {
            DecompPolicy::Uniform(_) => "uniform",
            DecompPolicy::Hilbert => "hilbert",
            DecompPolicy::Adaptive { .. } => "adaptive",
        }
    }
}

/// Full decomposition configuration: base grid resolution plus policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompConfig {
    /// Base grid resolution. Uniform and Hilbert tile exactly this;
    /// Adaptive refines it into its histogram grid.
    pub grid: GridSpec,
    /// Decomposition family.
    pub policy: DecompPolicy,
}

impl DecompConfig {
    /// The paper's configuration: uniform cells, round-robin declustering.
    pub fn uniform(grid: GridSpec) -> Self {
        DecompConfig {
            grid,
            policy: DecompPolicy::Uniform(CellMap::RoundRobin),
        }
    }

    /// Uniform cells with a specific [`CellMap`].
    pub fn uniform_with_map(grid: GridSpec, map: CellMap) -> Self {
        DecompConfig {
            grid,
            policy: DecompPolicy::Uniform(map),
        }
    }

    /// Hilbert-mapped uniform cells.
    pub fn hilbert(grid: GridSpec) -> Self {
        DecompConfig {
            grid,
            policy: DecompPolicy::Hilbert,
        }
    }

    /// Adaptive bisection over a `refine`× finer histogram grid.
    pub fn adaptive(grid: GridSpec, refine: u32) -> Self {
        DecompConfig {
            grid,
            policy: DecompPolicy::Adaptive { refine },
        }
    }

    /// Policy resolved from the [`DECOMP_ENV`] knob.
    pub fn from_env(grid: GridSpec) -> Self {
        DecompConfig {
            grid,
            policy: DecompPolicy::from_env(),
        }
    }

    /// The grid the policy actually tiles: the base spec for uniform and
    /// Hilbert, the refined histogram spec for adaptive. The refinement
    /// factor is clamped so the cell count stays inside the `u32` id
    /// space (and below 2^22 cells, keeping the rank table small).
    pub fn effective_spec(&self) -> GridSpec {
        match self.policy {
            DecompPolicy::Uniform(_) | DecompPolicy::Hilbert => self.grid,
            DecompPolicy::Adaptive { refine } => {
                let mut f = refine.max(1);
                loop {
                    let spec = GridSpec {
                        cells_x: self.grid.cells_x.saturating_mul(f),
                        cells_y: self.grid.cells_y.saturating_mul(f),
                    };
                    if f == 1 || spec.num_cells_u64() <= (1 << 22) {
                        return spec;
                    }
                    f /= 2;
                }
            }
        }
    }
}

/// Element-wise `u64` sum — the reduction behind the adaptive histogram.
struct SumCounts;

impl ReduceOp<Vec<u64>> for SumCounts {
    fn combine(&self, a: &Vec<u64>, b: &Vec<u64>) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }
}

/// Collectively builds the configured decomposition from this rank's
/// local features (single layer). Every rank must call it; all ranks
/// receive identical objects.
pub fn build_global(
    comm: &mut Comm,
    layers: &[&[Feature]],
    cfg: &DecompConfig,
) -> Box<dyn SpatialDecomposition> {
    let local_mbr = layers
        .iter()
        .flat_map(|l| l.iter())
        .fold(Rect::EMPTY, |acc, f| acc.union(&f.geometry.envelope()));
    build_global_from_mbr(comm, local_mbr, layers, cfg)
}

/// Collective builder from an already-computed local MBR (used when the
/// extent spans several layers, as in spatial join). `layers` is still
/// consulted by the adaptive policy's histogram pass; uniform and Hilbert
/// only use the MBR.
pub fn build_global_from_mbr(
    comm: &mut Comm,
    local_mbr: Rect,
    layers: &[&[Feature]],
    cfg: &DecompConfig,
) -> Box<dyn SpatialDecomposition> {
    let ranks = comm.size();
    match cfg.policy {
        DecompPolicy::Uniform(map) => {
            let grid = UniformGrid::build_global_from_mbr(comm, local_mbr, cfg.grid);
            Box::new(UniformDecomposition::new(grid, map, ranks))
        }
        DecompPolicy::Hilbert => {
            let grid = UniformGrid::build_global_from_mbr(comm, local_mbr, cfg.grid);
            Box::new(HilbertDecomposition::new(grid, ranks))
        }
        DecompPolicy::Adaptive { .. } => {
            let spec = cfg.effective_spec();
            let grid = UniformGrid::build_global_from_mbr(comm, local_mbr, spec);
            // Histogram pass: one reference-cell lookup per feature
            // (charged as MBR tests), then a global element-wise sum.
            let mut counts = vec![0u64; grid.num_cells() as usize];
            let mut n = 0u64;
            let mut scratch = Vec::with_capacity(1);
            for f in layers.iter().flat_map(|l| l.iter()) {
                n += 1;
                let env = f.geometry.envelope();
                if env.is_empty() {
                    continue;
                }
                grid.cells_overlapping_into(
                    &Rect::new(env.min_x, env.min_y, env.min_x, env.min_y),
                    &mut scratch,
                );
                if let Some(&c) = scratch.first() {
                    counts[c as usize] += 1;
                }
            }
            comm.charge(Work::MbrTests { n });
            let counts = comm.allreduce(counts, grid.num_cells() as u64 * 8, &SumCounts);
            Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks))
        }
    }
}

/// Builds the R-tree over cell boundaries the paper describes ("an R-tree
/// is first built by inserting the individual cell boundaries"), charging
/// the rank the insertion cost.
/// Not collective — the communicator is used only to charge local compute.
pub fn build_cell_rtree(comm: &mut Comm, decomp: &dyn SpatialDecomposition) -> RTree<u32> {
    let items: Vec<(Rect, u32)> = (0..decomp.num_cells())
        .map(|id| (decomp.cell_rect(id), id))
        .collect();
    comm.charge(Work::RtreeInserts {
        n: decomp.num_cells() as u64,
    });
    RTree::bulk_load(items)
}

/// Projects features onto cells through the cell R-tree (the paper's
/// filter mechanism), charging query costs. Returns `(cell, feature
/// index)` pairs; features spanning k cells appear k times.
/// Not collective — the communicator is used only to charge local compute.
pub fn project_to_cells(
    comm: &mut Comm,
    rtree: &RTree<u32>,
    features: &[Feature],
) -> Vec<(u32, usize)> {
    let mut out = Vec::with_capacity(features.len());
    let mut results = 0u64;
    for (idx, f) in features.iter().enumerate() {
        let mbr = f.geometry.envelope();
        let cells = rtree.query(&mbr);
        results += cells.len() as u64;
        for &cell in cells {
            out.push((cell, idx));
        }
    }
    comm.charge(Work::RtreeQueries {
        n: features.len() as u64,
        results,
    });
    out
}

/// Load-imbalance ratio of a per-rank count vector: `max / mean`, the
/// metric the `decomp` repro experiment reports. 1.0 is perfect balance;
/// `ranks` is the worst case (everything on one rank). Empty or all-zero
/// inputs report 1.0.
pub fn imbalance_ratio(per_rank: &[u64]) -> f64 {
    if per_rank.is_empty() {
        return 1.0;
    }
    let total: u64 = per_rank.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / per_rank.len() as f64;
    let max = per_rank.iter().max().copied().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_geom::Point;
    use mvio_msim::{Topology, World, WorldConfig};

    fn grid(side: u32) -> UniformGrid {
        UniformGrid::new(
            Rect::new(0.0, 0.0, side as f64, side as f64),
            GridSpec::square(side),
        )
    }

    fn partition_holds(d: &dyn SpatialDecomposition) {
        let mut owned = vec![0u32; d.num_cells() as usize];
        for r in 0..d.num_ranks() {
            for c in d.cells_of_rank(r) {
                owned[c as usize] += 1;
            }
        }
        assert!(
            owned.iter().all(|&n| n == 1),
            "every cell owned exactly once"
        );
    }

    #[test]
    fn uniform_decomposition_matches_grid_and_map() {
        let g = grid(4);
        let d = UniformDecomposition::new(g.clone(), CellMap::RoundRobin, 3);
        assert_eq!(d.num_cells(), 16);
        assert_eq!(d.bounds(), g.bounds());
        for c in 0..16 {
            assert_eq!(d.cell_rect(c), g.cell_rect(c));
            assert_eq!(d.cell_to_rank(c), (c as usize) % 3);
        }
        let probe = Rect::new(0.5, 0.5, 1.5, 1.5);
        assert_eq!(d.cells_for_rect_vec(&probe), g.cells_overlapping(&probe));
        partition_holds(&d);
    }

    #[test]
    fn hilbert_runs_are_contiguous_compact_and_balanced() {
        let d = HilbertDecomposition::new(grid(8), 4);
        partition_holds(&d);
        // Balance: 64 cells over 4 ranks = exactly 16 each.
        for r in 0..4 {
            assert_eq!(d.cells_of_rank(r).len(), 16, "rank {r}");
        }
        // Compactness: each rank's bounding box is a quarter-ish of the
        // world, far below round-robin's full-extent scatter.
        for r in 0..4 {
            let bbox = d
                .cells_of_rank(r)
                .iter()
                .fold(Rect::EMPTY, |a, &c| a.union(&d.cell_rect(c)));
            assert!(
                bbox.area() <= 16.0 + 1e-9,
                "rank {r} bbox area {} must be compact",
                bbox.area()
            );
        }
    }

    #[test]
    fn adaptive_bisection_balances_a_hotspot() {
        // All weight in one corner quadrant: round-robin would still
        // balance (it scatters), but Block-style contiguous splits would
        // not. Check the bisection tracks counts, not cell counts.
        let g = grid(8);
        let mut counts = vec![0u64; 64];
        for row in 0..4u32 {
            for col in 0..4u32 {
                counts[(row * 8 + col) as usize] = 100;
            }
        }
        // A sprinkle elsewhere so no region is empty.
        for c in counts.iter_mut() {
            *c += 1;
        }
        let d = AdaptiveBisection::from_counts(g, &counts, 4);
        partition_holds(&d);
        let loads: Vec<u64> = (0..4)
            .map(|r| d.cells_of_rank(r).iter().map(|&c| counts[c as usize]).sum())
            .collect();
        let ratio = imbalance_ratio(&loads);
        assert!(
            ratio < 1.5,
            "bisection must balance the hotspot, got loads {loads:?} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn aligning_a_bisection_to_itself_is_the_identity() {
        let counts: Vec<u64> = (0..64).map(|c| (c * 7) % 13).collect();
        let d = AdaptiveBisection::from_counts(grid(8), &counts, 4);
        let aligned = d.clone().aligned_to(&d, &counts);
        assert_eq!(aligned, d);
    }

    #[test]
    fn aligning_permutes_labels_without_touching_loads() {
        // Balanced base, then a perturbed re-bisection: alignment must
        // keep every rank's load bit-identical (it is a permutation)
        // while cutting the owner diff versus the unaligned labels.
        let mut counts = vec![1u64; 64];
        let old = AdaptiveBisection::from_counts(grid(8), &counts, 4);
        // Drift: a hotspot lands in the top-right corner.
        for row in 5..8u32 {
            for col in 5..8u32 {
                counts[(row * 8 + col) as usize] += 6;
            }
        }
        let raw = AdaptiveBisection::from_counts(grid(8), &counts, 4);
        let aligned = raw.clone().aligned_to(&old, &counts);
        partition_holds(&aligned);
        let loads = |d: &AdaptiveBisection| -> Vec<u64> {
            let mut v: Vec<u64> = (0..4)
                .map(|r| d.cells_of_rank(r).iter().map(|&c| counts[c as usize]).sum())
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(loads(&raw), loads(&aligned), "alignment is a pure relabel");
        let diff = |d: &AdaptiveBisection| {
            (0..64u32)
                .filter(|&c| d.cell_to_rank(c) != old.cell_to_rank(c))
                .count()
        };
        assert!(
            diff(&aligned) <= diff(&raw),
            "aligned diff {} must not exceed raw diff {}",
            diff(&aligned),
            diff(&raw)
        );
        assert!(
            diff(&aligned) < 32,
            "a corner hotspot should leave most of the 64-cell map in place, moved {}",
            diff(&aligned)
        );
    }

    #[test]
    fn adaptive_handles_degenerate_histograms() {
        // All-zero histogram: falls back to even cell splits.
        let d = AdaptiveBisection::from_counts(grid(4), &[0; 16], 4);
        partition_holds(&d);
        let sizes: Vec<usize> = (0..4).map(|r| d.cells_of_rank(r).len()).collect();
        assert_eq!(sizes, vec![4, 4, 4, 4]);
        // More ranks than cells: surplus ranks own nothing, every cell
        // still owned exactly once.
        let d = AdaptiveBisection::from_counts(grid(2), &[5; 4], 7);
        partition_holds(&d);
        // 1x1 grid, many ranks.
        let d = AdaptiveBisection::from_counts(
            UniformGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), GridSpec::square(1)),
            &[9],
            3,
        );
        partition_holds(&d);
        assert_eq!(d.cell_to_rank(0), 0);
    }

    #[test]
    fn reference_cell_is_the_min_corner_cell() {
        let d = UniformDecomposition::new(grid(4), CellMap::RoundRobin, 2);
        assert_eq!(d.reference_cell(&Rect::new(0.5, 0.5, 2.5, 2.5)), Some(0));
        assert_eq!(d.reference_cell(&Rect::new(3.5, 3.5, 9.0, 9.0)), Some(15));
        assert_eq!(d.reference_cell(&Rect::new(10.0, 10.0, 11.0, 11.0)), None);
        assert_eq!(d.reference_cell(&Rect::EMPTY), None);
    }

    #[test]
    fn max_edge_cells_are_flagged() {
        let d = UniformDecomposition::new(grid(4), CellMap::RoundRobin, 2);
        assert_eq!(d.cell_on_max_edge(0), (false, false));
        assert_eq!(d.cell_on_max_edge(3), (true, false));
        assert_eq!(d.cell_on_max_edge(12), (false, true));
        assert_eq!(d.cell_on_max_edge(15), (true, true));
    }

    #[test]
    fn effective_spec_refines_and_clamps() {
        let cfg = DecompConfig::adaptive(GridSpec::square(16), 8);
        assert_eq!(cfg.effective_spec(), GridSpec::square(128));
        let cfg = DecompConfig::uniform(GridSpec::square(16));
        assert_eq!(cfg.effective_spec(), GridSpec::square(16));
        // A refinement that would blow the cell-id space clamps down.
        let cfg = DecompConfig::adaptive(GridSpec::square(1 << 10), 1 << 10);
        let spec = cfg.effective_spec();
        assert!(spec.num_cells_u64() <= 1 << 22, "{spec:?}");
        assert!(spec.cells_x >= 1 << 10, "never below the base spec");
    }

    #[test]
    fn policy_from_env_defaults_to_uniform_round_robin() {
        // The suite may run under MVIO_DECOMP; only check the fallback
        // wiring when the knob is unset.
        if std::env::var(DECOMP_ENV).is_err() {
            assert_eq!(
                DecompPolicy::from_env(),
                DecompPolicy::Uniform(CellMap::RoundRobin)
            );
        }
        assert_eq!(DecompPolicy::adaptive().name(), "adaptive");
        assert_eq!(DecompPolicy::Hilbert.name(), "hilbert");
        assert_eq!(DecompPolicy::Uniform(CellMap::Block).name(), "uniform");
    }

    #[test]
    fn collective_builders_agree_across_ranks() {
        let cfgs = [
            DecompConfig::uniform(GridSpec::square(4)),
            DecompConfig::hilbert(GridSpec::square(4)),
            DecompConfig::adaptive(GridSpec::square(4), 2),
        ];
        for cfg in cfgs {
            let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let feats: Vec<Feature> = (0..10)
                    .map(|i| {
                        Feature::new(mvio_geom::Geometry::Point(Point::new(
                            (comm.rank() * 10 + i) as f64,
                            i as f64,
                        )))
                    })
                    .collect();
                let d = build_global(comm, &[&feats], &cfg);
                (
                    d.bounds(),
                    d.num_cells(),
                    (0..d.num_cells())
                        .map(|c| d.cell_to_rank(c))
                        .collect::<Vec<_>>(),
                )
            });
            assert_eq!(out[0], out[1], "{cfg:?}");
            assert_eq!(out[0], out[2], "{cfg:?}");
        }
    }

    #[test]
    fn adaptive_global_build_splits_a_clustered_input() {
        // 3 ranks, all features piled into one corner: adaptive must not
        // leave the pile on one rank.
        let cfg = DecompConfig::adaptive(GridSpec::square(4), 4);
        let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            // The pile spans a handful of *fine* histogram cells (cell
            // side ≈ 0.63 here) while fitting inside one coarse 4x4 cell,
            // so only the refined bisection can split it.
            let mut feats: Vec<Feature> = (0..60)
                .map(|i| {
                    Feature::new(mvio_geom::Geometry::Point(Point::new(
                        (i % 8) as f64 * 0.15,
                        (i / 8) as f64 * 0.15,
                    )))
                })
                .collect();
            // One far-away outlier fixes the global extent.
            feats.push(Feature::new(mvio_geom::Geometry::Point(Point::new(
                10.0, 10.0,
            ))));
            let d = build_global(comm, &[&feats], &cfg);
            let mut loads = vec![0u64; comm.size()];
            for f in &feats {
                if let Some(c) = d.reference_cell(&f.geometry.envelope()) {
                    loads[d.cell_to_rank(c)] += 1;
                }
            }
            loads
        });
        // Same loads on every rank (features replicated in this test).
        assert_eq!(out[0], out[1]);
        let ratio = imbalance_ratio(&out[0]);
        assert!(
            ratio < 2.0,
            "adaptive must split the corner pile: loads {:?} ratio {ratio:.2}",
            out[0]
        );
    }

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0, 0]), 1.0);
        assert_eq!(imbalance_ratio(&[4, 4, 4, 4]), 1.0);
        assert_eq!(imbalance_ratio(&[8, 0, 0, 0]), 4.0);
    }
}
