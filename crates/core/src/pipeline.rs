//! The intra-rank streaming ingest pipeline: multi-threaded
//! parse → cell-map → serialize with deterministic merge.
//!
//! The paper's end-to-end win comes from overlapping I/O, parsing and
//! spatial partitioning. The per-rank path elsewhere in this crate
//! (`reader` → `grid` → `exchange`) is strictly sequential: parse *all*
//! records, then map *all* features to cells, then serialize *all*
//! replicas. This module fans both compute stages out to worker threads:
//!
//! 1. the rank's record buffer is split into record-aligned **chunks**
//!    ([`split_record_chunks`]);
//! 2. N workers pull chunks from an MPMC channel and parse them into
//!    per-chunk feature batches ([`parse_chunked`]);
//! 3. a second fan-out maps each parsed batch onto grid cells and
//!    serializes the replicas straight into per-destination wire buffers
//!    ([`partition_chunked`]) — features stream into the exchange format
//!    without an intermediate `Vec<(u32, Feature)>` snapshot;
//! 4. [`crate::exchange::exchange_serialized`] ships the buffers with the
//!    usual two-round `Alltoall` + `Alltoallv` protocol — or, when a
//!    finite `MVIO_EXCHANGE_CHUNK` is in force, the partition and
//!    exchange stages fuse into [`partition_exchange_overlapped`] and
//!    stream through the chunked [`crate::exchange::ExchangePlan`], each
//!    round's `ialltoallv` overlapping the next round's serialization.
//!
//! # Determinism
//!
//! Output is **bit-identical to the sequential path regardless of worker
//! count**: chunk boundaries depend only on the input and the chunk-size
//! knobs (never on the worker count or OS scheduling), and the merge
//! concatenates per-chunk results in ascending chunk order. The existing
//! test suite therefore doubles as a correctness oracle for the pipeline.
//!
//! Virtual-time accounting is equally deterministic: worker threads
//! cannot touch the rank's [`Comm`] clock, so each chunk's work is
//! charged to a [`WorkTally`] and folded into per-worker *lanes* by the
//! fixed rule `lane = chunk_index % workers`. The rank clock then
//! advances by the **slowest lane** ([`Comm::advance_parallel`]) — the
//! virtual wall-time of a perfectly overlapped parallel region. With one
//! worker the parse stage charges exactly what [`crate::reader::parse_buffer`]
//! would (the lane is the sequential sum); the partition stage
//! additionally charges the grid-filter lookup (`Work::RtreeQueries`,
//! the paper's cell-filter mechanism), which a hand-rolled
//! `cells_overlapping` loop would not. Either way the reported speedup
//! at `w` workers is a property of the partitioned work, not of the
//! host machine.
//!
//! # Worker-count knob
//!
//! [`PipelineOptions::workers`]`= 0` (the default) resolves through the
//! `MVIO_PIPELINE_WORKERS` environment variable, falling back to the
//! host's available parallelism (capped at 8). CI pins the knob to 1 and
//! 4 and runs the full suite under both.
//!
//! # Example
//!
//! A two-rank world ingests a tiny WKT file end to end — read, parse,
//! decompose, exchange — leaving each rank holding the replicas of the
//! cells it owns:
//!
//! ```
//! use mvio_core::decomp::DecompConfig;
//! use mvio_core::grid::GridSpec;
//! use mvio_core::partition::ReadOptions;
//! use mvio_core::pipeline::{ingest, PipelineOptions};
//! use mvio_core::reader::WktLineParser;
//! use mvio_msim::{Topology, World, WorldConfig};
//! use mvio_pfs::{FsConfig, SimFs};
//!
//! let fs = SimFs::new(FsConfig::gpfs_roger());
//! fs.create("pts.wkt", None)
//!     .unwrap()
//!     .append(b"POINT (0.5 0.5)\ta\nPOINT (3.5 3.5)\tb\nPOINT (3.5 0.5)\tc\n");
//! let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
//!     let ingested = ingest(
//!         comm,
//!         &fs,
//!         "pts.wkt",
//!         &ReadOptions::default(),
//!         &WktLineParser,
//!         &DecompConfig::uniform(GridSpec::square(2)),
//!         &PipelineOptions::default(),
//!     )
//!     .unwrap();
//!     // Every replica landed on the rank owning its cell.
//!     assert!(ingested
//!         .owned
//!         .iter()
//!         .all(|(cell, _)| ingested.decomp.cell_to_rank(*cell) == comm.rank()));
//!     ingested.owned.len()
//! });
//! // The three features exist exactly once across the world.
//! assert_eq!(out.iter().sum::<usize>(), 3);
//! ```

use crate::decomp::{self, DecompConfig, SpatialDecomposition};
// The persistence half of the pipeline: `ingest` once, `write_partitioned`
// the result, `read_partitioned` it back on any later run (bit-identically
// under the same world size and decomposition).
use crate::exchange::{
    exchange_serialized_with, serialize_record, ExchangeOptions, ExchangePlan, ExchangeRound,
    ExchangeStats, SerializedBatch,
};
use crate::partition::{read_partition_text, ReadOptions};
use crate::reader::{parse_records_into, GeometryParser};
pub use crate::snapshot::{
    read_partitioned, write_partitioned, SnapshotReadOptions, SnapshotWriteOptions,
};
use crate::{Feature, Result};
use crossbeam::channel;
use mvio_msim::{Comm, Work, WorkTally};
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Environment variable consulted when [`PipelineOptions::workers`] is 0.
pub const WORKERS_ENV: &str = "MVIO_PIPELINE_WORKERS";

/// Knobs for the streaming ingest pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Worker threads per stage. `0` = auto: `MVIO_PIPELINE_WORKERS`,
    /// else the host's available parallelism capped at 8.
    pub workers: usize,
    /// Target bytes per parse chunk (record-aligned; a chunk never splits
    /// a record).
    pub parse_chunk_bytes: usize,
    /// Features per cell-map/serialize chunk.
    pub partition_chunk_records: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            workers: 0,
            parse_chunk_bytes: 64 << 10,
            partition_chunk_records: 1024,
        }
    }
}

impl PipelineOptions {
    /// Sets an explicit worker count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the parse-chunk size in bytes.
    pub fn with_parse_chunk_bytes(mut self, bytes: usize) -> Self {
        self.parse_chunk_bytes = bytes;
        self
    }

    /// Sets the partition-chunk size in records.
    pub fn with_partition_chunk_records(mut self, records: usize) -> Self {
        self.partition_chunk_records = records;
        self
    }

    /// The worker count this configuration resolves to.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }
}

/// Upper bound on the resolved worker count, whatever the source. Each
/// rank thread spawns its own workers, so a runaway request (a typo'd
/// `MVIO_PIPELINE_WORKERS=100000`) must clamp rather than exhaust OS
/// threads inside `thread::scope`.
pub const MAX_WORKERS: usize = 64;

/// Resolves a requested worker count: explicit values win, `0` consults
/// [`WORKERS_ENV`], and absent both the host's available parallelism is
/// used (capped at 8 so huge machines don't fragment small inputs).
/// Every source is clamped to `1..=`[`MAX_WORKERS`].
pub fn resolve_workers(requested: usize) -> usize {
    let raw = if requested > 0 {
        requested
    } else if let Some(n) = std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    };
    raw.clamp(1, MAX_WORKERS)
}

/// Counters describing one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Record-aligned text chunks parsed.
    pub parse_chunks: u64,
    /// Feature chunks cell-mapped and serialized.
    pub partition_chunks: u64,
    /// Records parsed.
    pub records: u64,
    /// Record bytes parsed (including delimiters).
    pub record_bytes: u64,
    /// `(cell, feature)` replicas serialized.
    pub pairs: u64,
}

impl PipelineStats {
    /// Combines the stats of two stages of the same run.
    fn merge(a: PipelineStats, b: PipelineStats) -> PipelineStats {
        PipelineStats {
            workers: a.workers.max(b.workers),
            parse_chunks: a.parse_chunks + b.parse_chunks,
            partition_chunks: a.partition_chunks + b.partition_chunks,
            records: a.records + b.records,
            record_bytes: a.record_bytes + b.record_bytes,
            pairs: a.pairs + b.pairs,
        }
    }
}

/// Splits `text` into record-aligned chunks of roughly `target_bytes`
/// each: every chunk ends on a record delimiter (or the end of input), so
/// chunks can be parsed independently. Boundaries depend only on the
/// input and the target — never on the worker count — which is what makes
/// the parallel merge bit-identical to the sequential scan.
pub fn split_record_chunks(text: &str, target_bytes: usize) -> Vec<&str> {
    let target = target_bytes.max(1);
    let mut out = Vec::new();
    let mut rest = text;
    while rest.len() > target {
        // First newline at or after the target. Newlines are ASCII, so
        // the byte offset is always a valid char boundary.
        match rest.as_bytes()[target - 1..]
            .iter()
            .position(|&b| b == b'\n')
        {
            Some(off) => {
                let cut = target + off;
                out.push(&rest[..cut]);
                rest = &rest[cut..];
            }
            None => break,
        }
    }
    if !rest.is_empty() {
        out.push(rest);
    }
    out
}

/// Runs `job` over `jobs.len()` indexed work items on `workers` threads
/// fed by an MPMC channel, returning results ordered by job index and the
/// per-lane virtual-second totals (`lane = index % lanes`). The
/// single-worker case runs inline — same code path, no threads.
fn fan_out<J, O>(
    workers: usize,
    jobs: Vec<J>,
    job: impl Fn(&J) -> (O, f64) + Sync,
) -> (Vec<O>, Vec<f64>)
where
    J: Sync,
    O: Send,
{
    let n = jobs.len();
    let lanes_n = workers.min(n).max(1);
    let mut secs_by_idx = vec![0.0f64; n];
    let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();

    if lanes_n <= 1 {
        for (i, j) in jobs.iter().enumerate() {
            let (out, secs) = job(j);
            secs_by_idx[i] = secs;
            results[i] = Some(out);
        }
    } else {
        std::thread::scope(|s| {
            let (job_tx, job_rx) = channel::unbounded::<(usize, &J)>();
            let (res_tx, res_rx) = channel::unbounded::<(usize, O, f64)>();
            for _ in 0..lanes_n {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let job = &job;
                s.spawn(move || {
                    while let Ok((idx, item)) = job_rx.recv() {
                        let (out, secs) = job(item);
                        if res_tx.send((idx, out, secs)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            for pair in jobs.iter().enumerate() {
                // audit: workers hold the receiver until `job_tx` drops below; a failed send means a worker panicked, and propagating that panic is intended.
                job_tx.send(pair).expect("workers alive");
            }
            drop(job_tx);
            for _ in 0..n {
                // audit: a recv error means a worker panicked mid-job; propagating the panic is intended.
                let (idx, out, secs) = res_rx.recv().expect("worker panicked");
                secs_by_idx[idx] = secs;
                results[idx] = Some(out);
            }
        });
    }
    // Deterministic lane accounting: fold per-chunk seconds in ascending
    // chunk order, never completion order — f64 addition is not
    // associative, so summing as results arrive would make the virtual
    // clock depend on OS scheduling at the ULP level.
    let mut lanes = vec![0.0f64; lanes_n];
    for (idx, secs) in secs_by_idx.iter().enumerate() {
        lanes[idx % lanes_n] += secs;
    }
    let results = results
        .into_iter()
        // audit: the collection loop above stored exactly one result per job index.
        .map(|r| r.expect("every job produced a result"))
        .collect();
    (results, lanes)
}

/// Parallel parse stage: splits `text` into record-aligned chunks, parses
/// them on worker threads, and merges the per-chunk feature batches in
/// chunk order. The feature vector is bit-identical to
/// [`crate::reader::parse_buffer`] for any worker count; the clock
/// advances by the slowest deterministic worker lane.
/// Not collective — local parse; the communicator only charges the
/// worker lanes.
pub fn parse_chunked(
    comm: &mut Comm,
    text: &str,
    parser: &dyn GeometryParser,
    opts: &PipelineOptions,
) -> Result<(Vec<Feature>, PipelineStats)> {
    let workers = opts.effective_workers();
    let chunks = split_record_chunks(text, opts.parse_chunk_bytes);
    let cost = *comm.cost_model();

    struct ChunkOut {
        feats: Vec<Feature>,
        records: u64,
        bytes: u64,
    }

    let (results, lanes) = fan_out(workers, chunks, |chunk: &&str| {
        let mut tally = WorkTally::new(cost);
        let mut feats = Vec::new();
        let mut bytes = 0u64;
        let parsed = parse_records_into(
            chunk,
            parser,
            |b, class| {
                bytes += b;
                tally.charge(Work::ParseWkt { bytes: b, class });
            },
            &mut feats,
        );
        let out = parsed.map(|records| ChunkOut {
            feats,
            records,
            bytes,
        });
        (out, tally.seconds())
    });
    let parse_chunks = results.len() as u64;
    // Error of the lowest-index failed chunk — what the sequential scan
    // would have hit first.
    let batches = results.into_iter().collect::<Result<Vec<_>>>()?;
    comm.advance_parallel(&lanes);

    let mut stats = PipelineStats {
        workers,
        parse_chunks,
        ..Default::default()
    };
    let total: usize = batches.iter().map(|b| b.feats.len()).sum();
    let mut features = Vec::with_capacity(total);
    for b in batches {
        stats.records += b.records;
        stats.record_bytes += b.bytes;
        features.extend(b.feats);
    }
    Ok((features, stats))
}

/// Record-range boundaries of the partition stage: depends only on the
/// feature count and the chunk-size knob, never on the worker count.
fn partition_ranges(features: usize, step: usize) -> Vec<std::ops::Range<usize>> {
    (0..features)
        .step_by(step.max(1))
        .map(|lo| lo..(lo + step.max(1)).min(features))
        .collect()
}

/// Serializes one partition chunk: maps each feature in `range` onto the
/// decomposition's cells and appends every `(cell, feature)` replica to
/// the per-destination `bufs`/`records`, charging the cell lookup
/// (`Work::RtreeQueries`) and the wire serialization
/// (`Work::SerializeGeoms`) to `tally`. The single body behind both the
/// unfused [`partition_chunked`] stage and the fused
/// [`partition_exchange_overlapped`] feed — the byte streams are
/// identical by construction because this *is* the same code. Returns
/// the number of replicas produced. (The work is charged even when a
/// record fails mid-chunk, matching what the serializer executed.)
#[allow(clippy::too_many_arguments)]
fn serialize_partition_chunk<D: SpatialDecomposition + ?Sized>(
    decomp: &D,
    features: &[Feature],
    range: std::ops::Range<usize>,
    tally: &mut WorkTally,
    cells: &mut Vec<u32>,
    scratch: &mut Vec<u8>,
    bufs: &mut [Vec<u8>],
    records: &mut [u64],
) -> (Result<()>, u64) {
    let before: u64 = bufs.iter().map(|b| b.len() as u64).sum();
    let mut pairs = 0u64;
    let mut run = || -> Result<()> {
        for f in &features[range.clone()] {
            decomp.cells_for_rect(&f.geometry.envelope(), cells);
            pairs += cells.len() as u64;
            for &cell in cells.iter() {
                let dst = decomp.cell_to_rank(cell);
                serialize_record(cell, f, scratch, &mut bufs[dst])?;
                records[dst] += 1;
            }
        }
        Ok(())
    };
    let r = run();
    let after: u64 = bufs.iter().map(|b| b.len() as u64).sum();
    tally.charge(Work::RtreeQueries {
        n: range.len() as u64,
        results: pairs,
    });
    tally.charge(Work::SerializeGeoms {
        n: pairs,
        bytes: after - before,
    });
    (r, pairs)
}

/// Parallel partition stage: maps feature chunks onto the decomposition's
/// cells and serializes every `(cell, feature)` replica straight into
/// per-destination wire buffers, merged per destination in chunk order.
/// One cell-id scratch buffer is reused across all features of a chunk.
/// The resulting [`SerializedBatch`] is byte-identical for any worker
/// count and matches what [`crate::exchange::exchange_features`] would
/// serialize from the equivalent pair list.
/// Not collective — local serialization; the communicator only charges
/// the worker lanes.
pub fn partition_chunked<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    decomp: &D,
    features: &[Feature],
    opts: &PipelineOptions,
) -> Result<(SerializedBatch, PipelineStats)> {
    let workers = opts.effective_workers();
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );
    let step = opts.partition_chunk_records.max(1);
    let cost = *comm.cost_model();

    struct ChunkOut {
        bufs: Vec<Vec<u8>>,
        counts: Vec<u64>,
        pairs: u64,
    }

    let ranges = partition_ranges(features.len(), step);

    let (results, lanes) = fan_out(workers, ranges, |range: &std::ops::Range<usize>| {
        let mut tally = WorkTally::new(cost);
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); p];
        let mut counts = vec![0u64; p];
        let (r, pairs) = serialize_partition_chunk(
            decomp,
            features,
            range.clone(),
            &mut tally,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut bufs,
            &mut counts,
        );
        let out = r.map(|()| ChunkOut {
            bufs,
            counts,
            pairs,
        });
        (out, tally.seconds())
    });
    let partition_chunks = results.len() as u64;
    // Error of the lowest-index failed chunk — what the sequential scan
    // would have hit first.
    let batches = results.into_iter().collect::<Result<Vec<_>>>()?;
    comm.advance_parallel(&lanes);

    let mut out = SerializedBatch::empty(p);
    let mut stats = PipelineStats {
        workers,
        partition_chunks,
        ..Default::default()
    };
    for dst in 0..p {
        let total: usize = batches.iter().map(|b| b.bufs[dst].len()).sum();
        out.bufs[dst].reserve(total);
    }
    for b in batches {
        stats.pairs += b.pairs;
        for dst in 0..p {
            out.bufs[dst].extend_from_slice(&b.bufs[dst]);
            out.records[dst] += b.counts[dst];
        }
    }
    Ok((out, stats))
}

/// Fused partition + exchange stage with communication/compute overlap:
/// serializes the features' cell replicas chunk by chunk into
/// per-destination wire buffers and ships them through the chunked
/// [`ExchangePlan`], so round `r`'s `ialltoallv` is in flight while the
/// serializer produces round `r+1` (and round `r-1`'s receives
/// deserialize). A round closes once any destination's buffer reaches
/// `chunk_bytes`.
///
/// The serialized byte streams are identical to
/// [`partition_chunked`]'s (same chunk boundaries, same order), and the
/// collected result is reassembled in source-rank order, so the owned
/// pairs are **bit-identical** to the unfused
/// `partition_chunked` → `exchange_serialized` path — only the virtual
/// time moves, because serialization lanes (per-chunk [`WorkTally`]
/// totals under the same `chunk % workers` rule) are folded in overlapped
/// with the in-flight rounds. Collective: every rank must call it.
pub fn partition_exchange_overlapped<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    decomp: &D,
    features: &[Feature],
    opts: &PipelineOptions,
    chunk_bytes: u64,
) -> Result<(Vec<(u32, Feature)>, PipelineStats, ExchangeStats)> {
    let workers = opts.effective_workers();
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );
    let step = opts.partition_chunk_records.max(1);
    let cost = *comm.cost_model();
    let chunk_bytes = chunk_bytes.max(1);

    let ranges = partition_ranges(features.len(), step);

    let mut stats = PipelineStats {
        workers,
        ..Default::default()
    };
    let mut next = 0usize;
    let mut cells: Vec<u32> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();

    // Serializes partition chunks into one exchange round until a
    // destination fills up, reporting each chunk's work on its
    // deterministic lane. Runs between the plan's post and wait, so the
    // reported lane seconds overlap the in-flight round. A round always
    // carries at least one chunk per worker lane (when that many remain):
    // closing on the byte cap alone could shrink rounds to a single
    // chunk, serializing on one lane what the unfused stage spreads over
    // all of them.
    let mut feed = |_: &mut Comm| -> Result<Option<ExchangeRound>> {
        if next >= ranges.len() {
            return Ok(None);
        }
        let mut batch = SerializedBatch::empty(p);
        let mut lanes = vec![0.0f64; workers];
        let mut chunks_in_round = 0usize;
        while next < ranges.len() {
            let mut tally = WorkTally::new(cost);
            let (r, pairs) = serialize_partition_chunk(
                decomp,
                features,
                ranges[next].clone(),
                &mut tally,
                &mut cells,
                &mut scratch,
                &mut batch.bufs,
                &mut batch.records,
            );
            r?;
            lanes[next % workers] += tally.seconds();
            stats.partition_chunks += 1;
            stats.pairs += pairs;
            next += 1;
            chunks_in_round += 1;
            if chunks_in_round >= workers
                && batch.bufs.iter().any(|b| b.len() as u64 >= chunk_bytes)
            {
                break;
            }
        }
        Ok(Some(ExchangeRound {
            batch,
            lanes,
            more: next < ranges.len(),
        }))
    };

    let plan = ExchangePlan::new(
        comm,
        &ExchangeOptions::with_chunk(crate::exchange::ExchangeChunk::Bytes(chunk_bytes)),
    );
    let mut collector = crate::exchange::PerSourceCollector::new(p);
    let ex_stats = plan.run_streamed(comm, &mut feed, &mut |_, round| {
        collector.collect(round);
        Ok(())
    })?;
    let mut owned = Vec::new();
    collector.drain_into(&mut owned);
    Ok((owned, stats, ex_stats))
}

/// Per-rank result of a full pipelined ingest.
#[derive(Debug)]
pub struct IngestOutput {
    /// The collectively built global decomposition.
    pub decomp: Box<dyn SpatialDecomposition>,
    /// The `(cell, feature)` pairs this rank owns after the exchange —
    /// bit-identical to the sequential parse→project→exchange path.
    pub owned: Vec<(u32, Feature)>,
    /// Features this rank parsed from its file partition.
    pub local_features: u64,
    /// Exchange counters.
    pub exchange: ExchangeStats,
    /// Pipeline counters.
    pub stats: PipelineStats,
}

impl IngestOutput {
    /// Persists this ingest's partitioned result as a binary snapshot at
    /// `path` via the collective two-phase writer
    /// ([`crate::snapshot::write_partitioned`]), so later runs can
    /// [`read_partitioned`] it instead of re-ingesting the text.
    /// Collective: every rank must call it.
    pub fn write_partitioned(
        &self,
        comm: &mut Comm,
        fs: &Arc<SimFs>,
        path: &str,
        opts: &SnapshotWriteOptions,
    ) -> Result<crate::snapshot::SnapshotWriteReport> {
        crate::snapshot::write_partitioned(comm, fs, path, &self.owned, &*self.decomp, opts)
    }
}

/// The full streaming per-rank ingest: partitioned read → parallel parse
/// → collective decomposition build (`MPI_UNION` extent allreduce, plus
/// the histogram allreduce for the adaptive policy) → fused
/// cell-map/serialize + staged `Alltoall`/`Alltoallv` exchange. The
/// chunk policy resolves through [`crate::exchange::CHUNK_ENV`]; use
/// [`ingest_with_exchange`] to pin it explicitly. Collective: every rank
/// must call it.
pub fn ingest(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    read: &ReadOptions,
    parser: &dyn GeometryParser,
    cfg: &DecompConfig,
    opts: &PipelineOptions,
) -> Result<IngestOutput> {
    ingest_with_exchange(
        comm,
        fs,
        path,
        read,
        parser,
        cfg,
        opts,
        &ExchangeOptions::default(),
    )
}

/// [`ingest`] with an explicit exchange configuration. With an unlimited
/// chunk the partition stage fully serializes on worker threads before a
/// single blocking exchange round (the historic path, bit-identical in
/// data and virtual time); with a finite chunk the partition and
/// exchange stages fuse into [`partition_exchange_overlapped`], whose
/// owned pairs are still bit-identical — only the ingest time shrinks by
/// whatever communication hides under the pipelined serialization.
///
/// Only [`ExchangeOptions::chunk`] applies here: the sliding-window
/// variant ([`ExchangeOptions::windows`]) is a
/// [`crate::exchange::exchange_features`] feature, so `windows > 1` is
/// rejected with [`crate::CoreError::InvalidOptions`] rather than
/// silently ignored.
#[allow(clippy::too_many_arguments)]
/// Collective: every rank must call it — it chains the partitioned
/// read, the decomposition reductions, and the exchange.
pub fn ingest_with_exchange(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    read: &ReadOptions,
    parser: &dyn GeometryParser,
    cfg: &DecompConfig,
    opts: &PipelineOptions,
    exchange_opts: &ExchangeOptions,
) -> Result<IngestOutput> {
    if exchange_opts.windows > 1 {
        return Err(crate::CoreError::InvalidOptions(format!(
            "ingest does not support sliding windows (windows = {}); \
             use exchange_features for the windowed exchange",
            exchange_opts.windows
        )));
    }
    let text = read_partition_text(comm, fs, path, read)?;
    let (features, parse_stats) = parse_chunked(comm, &text, parser, opts)?;
    drop(text);
    let decomp = decomp::build_global(comm, &[&features], cfg);
    let local_features = features.len() as u64;
    let (owned, part_stats, exchange) = match exchange_opts.chunk.resolve() {
        Some(chunk_bytes) => {
            partition_exchange_overlapped(comm, &*decomp, &features, opts, chunk_bytes)?
        }
        None => {
            let (batch, part_stats) = partition_chunked(comm, &*decomp, &features, opts)?;
            drop(features);
            let (owned, exchange) = exchange_serialized_with(comm, batch, exchange_opts)?;
            (owned, part_stats, exchange)
        }
    };
    Ok(IngestOutput {
        decomp,
        owned,
        local_features,
        exchange,
        stats: PipelineStats::merge(parse_stats, part_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::exchange::{exchange_features, ExchangeOptions};
    use crate::grid::{CellMap, GridSpec, UniformGrid};
    use crate::reader::{parse_buffer, parse_buffer_serial, WktLineParser};
    use mvio_geom::Rect;
    use mvio_msim::{Topology, World, WorldConfig};

    /// A deterministic synthetic WKT buffer mixing shapes and userdata.
    fn sample_text(records: usize) -> String {
        let mut text = String::new();
        for i in 0..records {
            let x = (i % 37) as f64 * 0.7;
            let y = (i / 37) as f64 * 1.3;
            match i % 3 {
                0 => text.push_str(&format!("POINT ({x} {y})\tid={i}\n")),
                1 => text.push_str(&format!(
                    "LINESTRING ({x} {y}, {} {})\troad-{i}\n",
                    x + 2.5,
                    y + 0.4
                )),
                _ => text.push_str(&format!(
                    "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tlake-{i}\n",
                    x + 1.9,
                    x + 1.9,
                    y + 1.1,
                    y + 1.1
                )),
            }
        }
        text
    }

    #[test]
    fn chunks_reassemble_to_the_input_and_respect_records() {
        let text = sample_text(100);
        for target in [1, 17, 256, 4096, text.len() + 10] {
            let chunks = split_record_chunks(&text, target);
            assert_eq!(chunks.concat(), text, "target {target}");
            for c in &chunks[..chunks.len().saturating_sub(1)] {
                assert!(c.ends_with('\n'), "interior chunk must end a record");
            }
        }
        assert!(split_record_chunks("", 64).is_empty());
    }

    #[test]
    fn parallel_parse_is_bit_identical_for_any_worker_count() {
        let text = sample_text(300);
        let expect = parse_buffer_serial(&text, &WktLineParser).unwrap();
        for workers in [1, 2, 4, 8] {
            let text = text.clone();
            let out = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_parse_chunk_bytes(512);
                let (feats, stats) = parse_chunked(comm, &text, &WktLineParser, &opts).unwrap();
                assert_eq!(stats.records, 300);
                assert!(stats.parse_chunks > 4, "chunk size must fragment input");
                (feats, comm.now())
            });
            assert_eq!(out[0].0, expect, "workers={workers}");
            assert!(out[0].1 > 0.0);
        }
    }

    #[test]
    fn parallel_parse_speedup_is_modelled_deterministically() {
        // The virtual clock must report the max-lane time: 4 workers over
        // many uniform chunks ≈ 1/4 of the single-worker time.
        let text = sample_text(2000);
        let time_at = |workers: usize| -> f64 {
            let text = text.clone();
            World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_parse_chunk_bytes(1 << 10);
                let before = comm.now();
                parse_chunked(comm, &text, &WktLineParser, &opts).unwrap();
                comm.now() - before
            })[0]
        };
        let t1 = time_at(1);
        let t4 = time_at(4);
        assert!(
            t1 / t4 >= 1.5,
            "4-worker virtual speedup {:.2} must be >= 1.5x (t1={t1:.6}, t4={t4:.6})",
            t1 / t4
        );
    }

    #[test]
    fn single_worker_parse_time_matches_sequential_charge() {
        let text = sample_text(200);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let before = comm.now();
            if comm.rank() == 0 {
                let opts = PipelineOptions::default()
                    .with_workers(1)
                    .with_parse_chunk_bytes(777);
                parse_chunked(comm, &text, &WktLineParser, &opts).unwrap();
            } else {
                parse_buffer(comm, &text, &WktLineParser).unwrap();
            }
            comm.now() - before
        });
        let rel = (out[0] - out[1]).abs() / out[1];
        assert!(
            rel < 1e-9,
            "1-worker pipeline ({}) ~= sequential ({})",
            out[0],
            out[1]
        );
    }

    #[test]
    fn parse_errors_surface_the_first_bad_record() {
        let mut text = sample_text(50);
        text.push_str("POLYGON ((broken\n");
        text.push_str(&sample_text(5));
        text.push_str("POINT (also broken\n");
        for workers in [1, 4] {
            let text = text.clone();
            let msg = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_parse_chunk_bytes(128);
                parse_chunked(comm, &text, &WktLineParser, &opts)
                    .unwrap_err()
                    .to_string()
            });
            assert!(
                msg[0].contains("POLYGON ((broken"),
                "workers={workers}: must report the first bad record, got {}",
                msg[0]
            );
        }
    }

    #[test]
    fn partition_buffers_are_identical_for_any_worker_count_and_match_sequential() {
        let text = sample_text(240);
        let feats = parse_buffer_serial(&text, &WktLineParser).unwrap();
        let mk_decomp = || {
            UniformDecomposition::new(
                UniformGrid::new(Rect::new(0.0, 0.0, 30.0, 75.0), GridSpec::square(8)),
                CellMap::RoundRobin,
                3,
            )
        };
        let run = |workers: usize| {
            let feats = feats.clone();
            World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let decomp = mk_decomp();
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_partition_chunk_records(17);
                partition_chunked(comm, &decomp, &feats, &opts).unwrap()
            })
        };
        // Sequential reference: serialize replicas feature-major, cells
        // ascending — exactly what exchange_features would emit.
        let reference = {
            let decomp = mk_decomp();
            let mut batch = SerializedBatch::empty(3);
            for f in &feats {
                for cell in decomp.cells_for_rect_vec(&f.geometry.envelope()) {
                    let dst = decomp.cell_to_rank(cell);
                    serialize_record(cell, f, &mut Vec::new(), &mut batch.bufs[dst]).unwrap();
                    batch.records[dst] += 1;
                }
            }
            batch
        };
        let base = run(1);
        assert_eq!(
            base[0].0, reference,
            "1-worker output must match sequential"
        );
        for workers in [2, 4, 8] {
            let out = run(workers);
            for rank in 0..3 {
                assert_eq!(out[rank].0, base[rank].0, "workers={workers} rank={rank}");
            }
        }
    }

    #[test]
    fn full_ingest_matches_the_sequential_exchange_path() {
        let text = sample_text(180);
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        fs.create("data.wkt", None).unwrap().append(text.as_bytes());
        let spec = GridSpec::square(6);
        let read = ReadOptions::default().with_block_size(2 << 10);

        let sequential = {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let feats =
                    crate::partition::read_features(comm, &fs, "data.wkt", &read, &WktLineParser)
                        .unwrap();
                let decomp =
                    crate::decomp::build_global(comm, &[&feats], &DecompConfig::uniform(spec));
                let pairs: Vec<(u32, Feature)> = feats
                    .iter()
                    .flat_map(|f| {
                        decomp
                            .cells_for_rect_vec(&f.geometry.envelope())
                            .into_iter()
                            .map(|c| (c, f.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                exchange_features(comm, pairs, &*decomp, &ExchangeOptions::default())
                    .unwrap()
                    .0
            })
        };
        for workers in [1, 2, 4, 8] {
            let fs = Arc::clone(&fs);
            let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_parse_chunk_bytes(512)
                    .with_partition_chunk_records(13);
                let rep = ingest(
                    comm,
                    &fs,
                    "data.wkt",
                    &read,
                    &WktLineParser,
                    &DecompConfig::uniform(spec),
                    &opts,
                )
                .unwrap();
                assert_eq!(rep.exchange.records_sent, rep.stats.pairs);
                rep.owned
            });
            for rank in 0..4 {
                assert_eq!(out[rank], sequential[rank], "workers={workers} rank={rank}");
            }
        }
    }

    #[test]
    fn ingest_routes_identically_under_every_decomposition_policy() {
        // The *partitioning* differs per policy, but the union of all
        // ranks' owned pairs — and each pair's arrival at its cell's
        // owner — must hold for every decomposition.
        let text = sample_text(120);
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        fs.create("data.wkt", None).unwrap().append(text.as_bytes());
        let read = ReadOptions::default().with_block_size(2 << 10);
        let mut totals = Vec::new();
        for cfg in [
            DecompConfig::uniform(GridSpec::square(6)),
            DecompConfig::hilbert(GridSpec::square(6)),
            DecompConfig::adaptive(GridSpec::square(6), 4),
        ] {
            let fs = Arc::clone(&fs);
            let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let rep = ingest(
                    comm,
                    &fs,
                    "data.wkt",
                    &read,
                    &WktLineParser,
                    &cfg,
                    &PipelineOptions::default().with_workers(2),
                )
                .unwrap();
                for (cell, _) in &rep.owned {
                    assert_eq!(
                        rep.decomp.cell_to_rank(*cell),
                        comm.rank(),
                        "pair misrouted under {cfg:?}"
                    );
                }
                (rep.owned.len() as u64, rep.local_features)
            });
            let pairs: u64 = out.iter().map(|(p, _)| p).sum();
            let feats: u64 = out.iter().map(|(_, f)| f).sum();
            assert_eq!(feats, 120, "{cfg:?}");
            totals.push(pairs);
        }
        // Uniform and Hilbert share cells, so replica counts match
        // exactly; adaptive uses finer cells and replicates at least as
        // much.
        assert_eq!(totals[0], totals[1]);
        assert!(totals[2] >= totals[0]);
    }

    #[test]
    fn overlapped_ingest_is_bit_identical_to_the_blocking_path() {
        use crate::exchange::{ExchangeChunk, ExchangeOptions};
        let text = sample_text(200);
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        fs.create("data.wkt", None).unwrap().append(text.as_bytes());
        let spec = GridSpec::square(5);
        let read = ReadOptions::default().with_block_size(2 << 10);
        let run = |chunk: ExchangeChunk, workers: usize| {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let rep = ingest_with_exchange(
                    comm,
                    &fs,
                    "data.wkt",
                    &read,
                    &WktLineParser,
                    &DecompConfig::uniform(spec),
                    &PipelineOptions::default()
                        .with_workers(workers)
                        .with_partition_chunk_records(11),
                    &ExchangeOptions::with_chunk(chunk),
                )
                .unwrap();
                (rep.owned, rep.exchange.rounds, rep.stats.pairs, comm.now())
            })
        };
        let blocking = run(ExchangeChunk::Unlimited, 2);
        assert!(blocking.iter().all(|r| r.1 == 1), "unlimited = one round");
        for chunk in [64u64, 700, 1 << 20] {
            for workers in [1usize, 4] {
                let fused = run(ExchangeChunk::Bytes(chunk), workers);
                for rank in 0..4 {
                    assert_eq!(
                        fused[rank].0, blocking[rank].0,
                        "chunk={chunk} workers={workers} rank={rank}"
                    );
                    assert_eq!(fused[rank].2, blocking[rank].2, "pair counts");
                }
                if chunk == 64 {
                    assert!(fused[0].1 > 1, "small cap must take multiple rounds");
                }
            }
        }
    }

    #[test]
    fn ingest_persist_reload_is_bit_identical() {
        // The persistence loop: ingest text once, snapshot the
        // partitioned result, re-load it — the records (and their order)
        // must match the live ingest exactly, for every policy.
        let text = sample_text(150);
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        fs.create("data.wkt", None).unwrap().append(text.as_bytes());
        let read = ReadOptions::default().with_block_size(2 << 10);
        for (i, cfg) in [
            DecompConfig::uniform(GridSpec::square(5)),
            DecompConfig::hilbert(GridSpec::square(5)),
            DecompConfig::adaptive(GridSpec::square(5), 2),
        ]
        .into_iter()
        .enumerate()
        {
            let fs = Arc::clone(&fs);
            let snap = format!("snap-{i}.bin");
            let ok = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let rep = ingest(
                    comm,
                    &fs,
                    "data.wkt",
                    &read,
                    &WktLineParser,
                    &cfg,
                    &PipelineOptions::default().with_workers(2),
                )
                .unwrap();
                rep.write_partitioned(
                    comm,
                    &fs,
                    &snap,
                    &crate::snapshot::SnapshotWriteOptions::default(),
                )
                .unwrap();
                let (back, _) = crate::snapshot::read_partitioned(
                    comm,
                    &fs,
                    &snap,
                    &*rep.decomp,
                    &crate::snapshot::SnapshotReadOptions::default(),
                )
                .unwrap();
                back == rep.owned
            });
            assert!(ok.iter().all(|&b| b), "{cfg:?}");
        }
    }

    #[test]
    fn ingest_rejects_sliding_windows() {
        use crate::exchange::ExchangeOptions;
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        fs.create("data.wkt", None)
            .unwrap()
            .append(b"POINT (1 1)\tp\n");
        let out = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
            let res = ingest_with_exchange(
                comm,
                &fs,
                "data.wkt",
                &ReadOptions::default(),
                &WktLineParser,
                &DecompConfig::uniform(GridSpec::square(2)),
                &PipelineOptions::default().with_workers(1),
                &ExchangeOptions {
                    windows: 4,
                    ..Default::default()
                },
            );
            matches!(res, Err(crate::CoreError::InvalidOptions(m)) if m.contains("windows"))
        });
        assert!(out[0]);
    }

    #[test]
    fn worker_resolution_prefers_explicit_over_env() {
        assert_eq!(resolve_workers(3), 3);
        // 0 resolves through env/host; both paths yield >= 1.
        assert!(resolve_workers(0) >= 1);
        // Runaway requests clamp instead of exhausting OS threads.
        assert_eq!(resolve_workers(1_000_000), MAX_WORKERS);
    }

    #[test]
    fn env_resolved_worker_count_keeps_output_identical() {
        // Deliberately leaves `workers` at 0 so CI's MVIO_PIPELINE_WORKERS
        // sweeps (1 and 4) drive this test through different real widths;
        // the output must not notice.
        let text = sample_text(150);
        let expect = parse_buffer_serial(&text, &WktLineParser).unwrap();
        let out = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
            let opts = PipelineOptions::default().with_parse_chunk_bytes(512);
            assert!(opts.effective_workers() >= 1);
            parse_chunked(comm, &text, &WktLineParser, &opts).unwrap().0
        });
        assert_eq!(out[0], expect);
    }
}
