//! Record parsing: the paper's flexible "collection of strings" interface.
//!
//! MPI-IO only moves unformatted bytes, so after file partitioning each
//! rank holds a text buffer of complete records. The paper's design
//! presents those records as strings and lets the user supply the parse
//! method ("a flexible interface … allowing user to define parsing method
//! that returns a GEOS geometry for each string"). [`GeometryParser`] is
//! that interface; [`WktLineParser`] and [`CsvPointParser`] are the two
//! built-ins the paper's datasets need.

use crate::{CoreError, Feature, Result};
use mvio_geom::{wkt, Geometry, Point};
use mvio_msim::{Comm, ShapeClass, Work};

/// User-definable record parser: one input record → one [`Feature`].
pub trait GeometryParser: Send + Sync {
    /// Parses one record (without its trailing delimiter).
    fn parse(&self, record: &str) -> Result<Feature>;

    /// Shape class used for cost accounting of this record. The default
    /// sniffs the WKT keyword; fixed-format parsers override it.
    fn shape_class(&self, record: &str) -> ShapeClass {
        let t = record.trim_start().as_bytes();
        let kw_len = t
            .iter()
            .position(|b| !b.is_ascii_alphabetic())
            .unwrap_or(t.len());
        let kw = &t[..kw_len];
        if kw.eq_ignore_ascii_case(b"POINT") || kw.eq_ignore_ascii_case(b"MULTIPOINT") {
            ShapeClass::Point
        } else if kw.eq_ignore_ascii_case(b"LINESTRING")
            || kw.eq_ignore_ascii_case(b"MULTILINESTRING")
        {
            ShapeClass::Line
        } else {
            ShapeClass::Polygon
        }
    }
}

/// Parses `WKT[\t userdata]` lines — the layout of the paper's OSM
/// extracts (geometry first, optional tab-separated attributes).
#[derive(Debug, Clone, Copy, Default)]
pub struct WktLineParser;

impl GeometryParser for WktLineParser {
    fn parse(&self, record: &str) -> Result<Feature> {
        let (wkt_part, userdata) = match record.find('\t') {
            Some(idx) => (&record[..idx], &record[idx + 1..]),
            None => (record, ""),
        };
        let geometry = wkt::parse(wkt_part.trim()).map_err(|source| CoreError::Parse {
            record: record.to_string(),
            source,
        })?;
        // `f64::from_str` happily produces NaN/inf from "NaN"/"inf"
        // tokens; a single such coordinate poisons the MPI_UNION extent
        // allreduce (NaN comparisons) and the grid's cell clamping, so
        // reject it here like every other malformed record.
        if !geometry_is_finite(&geometry) {
            return Err(CoreError::Parse {
                record: record.to_string(),
                source: mvio_geom::GeomError::Invalid("non-finite coordinate".to_string()),
            });
        }
        Ok(Feature::with_userdata(geometry, userdata))
    }
}

/// True when every coordinate of `g` is finite. Linestrings and rings
/// already validate finiteness in their constructors; bare points (and
/// points nested in multis/collections) are the remaining hole.
fn geometry_is_finite(g: &Geometry) -> bool {
    match g {
        Geometry::Point(p) => p.is_finite(),
        Geometry::MultiPoint(mp) => mp.0.iter().all(Point::is_finite),
        Geometry::GeometryCollection(gc) => gc.0.iter().all(geometry_is_finite),
        _ => true,
    }
}

/// Parses `x,y[,userdata]` CSV point records (the New York Taxi style the
/// paper lists among vector formats).
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvPointParser;

impl GeometryParser for CsvPointParser {
    fn parse(&self, record: &str) -> Result<Feature> {
        let mut parts = record.splitn(3, ',');
        let bad = |msg: &str| CoreError::Parse {
            record: record.to_string(),
            source: mvio_geom::GeomError::Invalid(msg.to_string()),
        };
        let x: f64 = parts
            .next()
            .ok_or_else(|| bad("missing x"))?
            .trim()
            .parse()
            .map_err(|_| bad("bad x"))?;
        let y: f64 = parts
            .next()
            .ok_or_else(|| bad("missing y"))?
            .trim()
            .parse()
            .map_err(|_| bad("bad y"))?;
        if !x.is_finite() || !y.is_finite() {
            return Err(bad("non-finite coordinate"));
        }
        let userdata = parts.next().unwrap_or("").trim_start().to_string();
        Ok(Feature {
            geometry: Geometry::Point(Point::new(x, y)),
            userdata,
        })
    }

    fn shape_class(&self, _record: &str) -> ShapeClass {
        ShapeClass::Point
    }
}

/// The non-blank records of a newline-delimited buffer, with trailing
/// `\r` stripped — the record stream every parse path iterates.
pub fn records(text: &str) -> impl Iterator<Item = &str> {
    text.split('\n')
        .map(|r| r.trim_end_matches('\r'))
        .filter(|r| !r.trim().is_empty())
}

/// Streaming parse core: appends every record of `text` to the reusable
/// `out` buffer, reporting each record's `(bytes, shape class)` to
/// `charge` before parsing it. [`parse_buffer`] charges the rank clock
/// through it; the ingest pipeline's worker threads charge a
/// [`mvio_msim::WorkTally`] instead. Returns the number of records
/// appended.
pub fn parse_records_into(
    text: &str,
    parser: &dyn GeometryParser,
    mut charge: impl FnMut(u64, ShapeClass),
    out: &mut Vec<Feature>,
) -> Result<u64> {
    let mut n = 0u64;
    for record in records(text) {
        charge(record.len() as u64 + 1, parser.shape_class(record));
        out.push(parser.parse(record)?);
        n += 1;
    }
    Ok(n)
}

/// Parses every newline-delimited record in `text`, charging the rank's
/// clock the calibrated per-byte parse cost by shape class. Blank records
/// are skipped. This is the local parsing phase of the pipeline.
/// Not collective — local parsing; the communicator only charges the
/// clock.
pub fn parse_buffer(
    comm: &mut Comm,
    text: &str,
    parser: &dyn GeometryParser,
) -> Result<Vec<Feature>> {
    let mut out = Vec::new();
    parse_records_into(
        text,
        parser,
        |bytes, class| comm.charge(Work::ParseWkt { bytes, class }),
        &mut out,
    )?;
    Ok(out)
}

/// Sequential (single-rank) parse helper used by Table 3's baseline and by
/// tests; identical semantics to [`parse_buffer`] without a communicator.
pub fn parse_buffer_serial(text: &str, parser: &dyn GeometryParser) -> Result<Vec<Feature>> {
    let mut out = Vec::new();
    parse_records_into(text, parser, |_, _| {}, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_msim::{Topology, World, WorldConfig};

    #[test]
    fn wkt_line_parser_extracts_userdata() {
        let f = WktLineParser.parse("POINT (1 2)\tname=lake;id=7").unwrap();
        assert_eq!(f.geometry, Geometry::Point(Point::new(1.0, 2.0)));
        assert_eq!(f.userdata, "name=lake;id=7");
        let f2 = WktLineParser.parse("POINT (3 4)").unwrap();
        assert_eq!(f2.userdata, "");
    }

    #[test]
    fn wkt_line_parser_reports_bad_records() {
        let err = WktLineParser.parse("POLYGON ((oops))").unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }));
    }

    #[test]
    fn csv_point_parser() {
        let f = CsvPointParser.parse("1.5, -2.25, pickup").unwrap();
        assert_eq!(f.geometry, Geometry::Point(Point::new(1.5, -2.25)));
        assert_eq!(f.userdata, "pickup");
        assert!(CsvPointParser.parse("1.5").is_err());
        assert!(CsvPointParser.parse("a,b").is_err());
    }

    #[test]
    fn parsers_reject_non_finite_coordinates() {
        // `f64::from_str` accepts NaN/inf spellings, which would poison
        // the MPI_UNION extent allreduce and grid clamping downstream.
        for bad in [
            "POINT (NaN 2)",
            "POINT (1 inf)",
            "POINT (-inf 0)\tuserdata",
            "MULTIPOINT ((1 1), (NaN 2))",
        ] {
            let err = WktLineParser.parse(bad);
            assert!(matches!(err, Err(CoreError::Parse { .. })), "{bad}");
        }
        for bad in ["NaN,2", "1,inf", "-inf,0,tag", "1,-NaN"] {
            assert!(CsvPointParser.parse(bad).is_err(), "{bad}");
        }
        // Finite scientific notation must still parse.
        assert!(CsvPointParser.parse("1e3,-2.5e-2").is_ok());
        assert!(WktLineParser.parse("POINT (1e3 -2.5e-2)").is_ok());
    }

    #[test]
    fn shape_class_sniffing() {
        let p = WktLineParser;
        assert_eq!(p.shape_class("POINT (1 2)"), ShapeClass::Point);
        assert_eq!(p.shape_class("  linestring (0 0, 1 1)"), ShapeClass::Line);
        assert_eq!(
            p.shape_class("POLYGON ((0 0, 1 0, 0 1, 0 0))"),
            ShapeClass::Polygon
        );
        assert_eq!(
            p.shape_class("MULTIPOLYGON (((0 0, 1 0, 0 1, 0 0)))"),
            ShapeClass::Polygon
        );
    }

    #[test]
    fn parse_buffer_charges_time_and_skips_blanks() {
        let text = "POINT (1 2)\n\nPOINT (3 4)\n";
        let out = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let before = comm.now();
            let feats = parse_buffer(comm, text, &WktLineParser).unwrap();
            (feats.len(), comm.now() - before)
        });
        assert_eq!(out[0].0, 2);
        assert!(out[0].1 > 0.0);
    }

    #[test]
    fn serial_matches_parallel_results() {
        let text = "POINT (1 2)\nLINESTRING (0 0, 5 5)\n";
        let serial = parse_buffer_serial(text, &WktLineParser).unwrap();
        let parallel = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            parse_buffer(comm, text, &WktLineParser).unwrap()
        });
        assert_eq!(serial, parallel[0]);
    }
}
