//! Overlap (halo) file partitioning: the redundant-read alternative that
//! Figure 10 benchmarks against Algorithm 1.

use super::ReadOptions;
use crate::{CoreError, Result};
use mvio_msim::{AccessLevel, Comm, MpiFile, Work};

/// Reads this rank's partition using overlapping block reads.
///
/// Each rank reads its block **plus a halo** of `max_geometry_bytes` past
/// the block end (and one byte before the block start, to detect whether a
/// record begins exactly at the boundary). Ownership rule: a record
/// belongs to the rank whose block contains its first byte. No messages
/// are exchanged — the cost is `O(N · halo)` bytes of redundant reading
/// per iteration, which is exactly why the paper found this strategy
/// slower ("the overhead of reading 11 MB halo region by each process is
/// greater than exchanging missing co-ordinates").
/// Collective: every rank must call it with the same options.
pub fn read_overlap(comm: &mut Comm, file: &MpiFile, opts: &ReadOptions) -> Result<String> {
    let n = comm.size() as u64;
    let rank = comm.rank() as u64;
    let file_size = file.len();
    let delim = opts.delimiter;

    if file_size == 0 {
        return Ok(String::new());
    }

    let block = opts.block_size.unwrap_or(file_size.div_ceil(n)).max(1);
    let chunk = n * block;
    let iterations = file_size.div_ceil(chunk);
    let halo = opts.max_geometry_bytes;

    let mut out: Vec<u8> = Vec::new();

    for i in 0..iterations {
        let global_offset = i * chunk;
        let start = global_offset + rank * block;
        let len = if start >= file_size {
            0
        } else {
            (file_size - start).min(block)
        };

        // Read [start - lead, start + len + halo): one lead byte detects a
        // record boundary exactly at `start`.
        let lead: u64 = if start > 0 { 1 } else { 0 };
        let read_off = start - lead;
        let read_len = if len == 0 {
            0
        } else {
            (file_size - read_off).min(lead + len + halo)
        };

        let mut buf = vec![0u8; read_len as usize];
        let got = match opts.level {
            AccessLevel::Level0 => {
                if read_len > 0 {
                    file.read_at(comm, read_off, &mut buf)?
                } else {
                    0
                }
            }
            AccessLevel::Level1 => file.read_at_all(comm, read_off, &mut buf)?,
            AccessLevel::Level3 => {
                return Err(CoreError::Partition(
                    "Level 3 is a non-contiguous mode; use views::read for it".into(),
                ))
            }
        };
        debug_assert_eq!(got as u64, read_len);
        if len == 0 {
            continue;
        }

        // Index of `start` within buf is `lead`. Find where my first owned
        // record begins: at `start` itself when the previous byte is a
        // delimiter (or the file begins here); otherwise after the first
        // delimiter at or beyond `start`.
        let begin = if lead == 0 || buf[0] == delim {
            lead as usize
        } else {
            match buf[lead as usize..].iter().position(|&b| b == delim) {
                Some(p) => lead as usize + p + 1,
                None => continue, // my whole block is a predecessor's record interior
            }
        };

        // Last owned record: the one starting strictly before start + len.
        // Walk records from `begin`, stopping once a record starts at or
        // past the block end; the final owned record may extend into the
        // halo.
        let block_end_rel = (lead + len) as usize; // first byte past my block
        let mut pos = begin;
        let mut end = begin;
        while pos < block_end_rel.min(buf.len()) {
            // Record starting at `pos` (owned). Find its terminator.
            match buf[pos..].iter().position(|&b| b == delim) {
                Some(p) => {
                    end = pos + p + 1;
                    pos = end;
                }
                None => {
                    // Runs to EOF (final record without delimiter) or past
                    // the halo (record larger than the halo bound).
                    if read_off + buf.len() as u64 == file_size {
                        end = buf.len();
                        pos = end;
                    } else {
                        return Err(CoreError::Partition(format!(
                            "record starting at file offset {} exceeds the {halo}-byte halo; \
                             raise max_geometry_bytes",
                            read_off + pos as u64
                        )));
                    }
                }
            }
        }

        if end > begin {
            comm.charge(Work::CopyBytes {
                n: (end - begin) as u64,
            });
            out.extend_from_slice(&buf[begin..end]);
            if out.last() != Some(&delim) {
                out.push(delim); // normalize a missing EOF delimiter
            }
        }
    }

    String::from_utf8(out)
        .map_err(|e| CoreError::Partition(format!("partition produced invalid UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{read_partition_text, BoundaryStrategy};
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::{FsConfig, SimFs};
    use std::sync::Arc;

    fn build(recs: &[String], trailing_newline: bool) -> Arc<SimFs> {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("f.txt", None).unwrap();
        let mut text = recs.join("\n");
        if trailing_newline {
            text.push('\n');
        }
        f.append(text.as_bytes());
        fs
    }

    fn run(fs: &Arc<SimFs>, topo: Topology, opts: ReadOptions) -> Vec<String> {
        let per_rank = World::run(WorldConfig::new(topo), |comm| {
            read_partition_text(comm, fs, "f.txt", &opts).unwrap()
        });
        let mut all: Vec<String> = per_rank
            .iter()
            .flat_map(|t| t.lines().map(str::to_string))
            .filter(|l| !l.is_empty())
            .collect();
        all.sort();
        all
    }

    fn opts() -> ReadOptions {
        ReadOptions::default()
            .with_strategy(BoundaryStrategy::Overlap)
            .with_max_geometry_bytes(256)
    }

    fn recs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("record{i:03}:{}", "z".repeat(3 + (i * 11) % 50)))
            .collect()
    }

    #[test]
    fn exactly_once_equal_split() {
        let r = recs(60);
        let fs = build(&r, true);
        let mut expect = r.clone();
        expect.sort();
        assert_eq!(run(&fs, Topology::new(2, 3), opts()), expect);
    }

    #[test]
    fn exactly_once_small_blocks() {
        let r = recs(80);
        let fs = build(&r, true);
        let mut expect = r.clone();
        expect.sort();
        assert_eq!(
            run(&fs, Topology::new(2, 2), opts().with_block_size(128)),
            expect
        );
    }

    #[test]
    fn handles_missing_trailing_newline() {
        let r = recs(20);
        let fs = build(&r, false);
        let mut expect = r.clone();
        expect.sort();
        assert_eq!(
            run(&fs, Topology::new(1, 3), opts().with_block_size(100)),
            expect
        );
    }

    #[test]
    fn record_boundary_exactly_at_block_edge() {
        // Craft records so one ends exactly at a block boundary.
        let r: Vec<String> = vec!["aaaa".into(), "bbbb".into(), "cccc".into(), "dddd".into()];
        // each line is 5 bytes with newline; block 5 puts boundaries at
        // record edges exactly.
        let fs = build(&r, true);
        let mut expect = r.clone();
        expect.sort();
        assert_eq!(
            run(&fs, Topology::new(1, 4), opts().with_block_size(5)),
            expect
        );
    }

    #[test]
    fn overlap_matches_message_strategy() {
        let r = recs(100);
        let fs = build(&r, true);
        let msg = run(
            &fs,
            Topology::new(2, 2),
            ReadOptions::default()
                .with_block_size(200)
                .with_max_geometry_bytes(256),
        );
        let fs2 = build(&r, true);
        let ovl = run(&fs2, Topology::new(2, 2), opts().with_block_size(200));
        assert_eq!(msg, ovl);
    }

    #[test]
    fn overlap_reads_redundant_bytes() {
        let r = recs(100);
        let fs = build(&r, true);
        let file_len = fs.open("f.txt").unwrap().len();
        run(&fs, Topology::new(1, 4), opts().with_block_size(200));
        // Redundant halo reads mean strictly more bytes than the file —
        // the disadvantage the paper quantifies in Figure 10.
        assert!(
            fs.stats().bytes_read() > file_len,
            "overlap must read more than {file_len}, read {}",
            fs.stats().bytes_read()
        );
    }

    #[test]
    fn oversized_record_is_reported() {
        let r = vec!["short".to_string(), "L".repeat(2000), "tail".to_string()];
        let fs = build(&r, true);
        let results = World::run(WorldConfig::new(Topology::new(1, 4)), |comm| {
            read_partition_text(
                comm,
                &fs,
                "f.txt",
                &opts().with_block_size(64).with_max_geometry_bytes(100),
            )
        });
        assert!(results.iter().any(Result::is_err));
    }
}
