//! File partitioning for variable-length geometries.
//!
//! "Simple partitioning by file-blocks fails due to geometries getting
//! split across two consecutive MPI ranks" (paper §3). This module
//! implements both repairs the paper designs and compares (Figure 10):
//!
//! * [`BoundaryStrategy::Message`] — Algorithm 1: non-overlapping fixed
//!   blocks; each rank scans back to the last record delimiter in its
//!   block and passes the dangling tail to its ring successor using the
//!   deadlock-free even/odd send-recv schedule.
//! * [`BoundaryStrategy::Overlap`] — halo reads: each rank redundantly
//!   reads `max_geometry_bytes` past its block and resolves record
//!   ownership locally (a record belongs to the rank whose block contains
//!   its first byte).
//!
//! Both guarantee *exactly-once* delivery of every record, which the
//! integration tests verify against sequential parses.

pub mod baseline;
mod blocked;
mod overlap;

pub use baseline::{read_master_scatter, read_redundant};
pub use blocked::read_blocked;
pub use overlap::read_overlap;

use crate::reader::{parse_buffer, GeometryParser};
use crate::{Feature, Result};
use mvio_msim::{AccessLevel, Comm, Hints, MpiFile};
use mvio_pfs::SimFs;
use std::sync::Arc;

/// How block-boundary record splits are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryStrategy {
    /// Algorithm 1: ring messages carry the incomplete tails (no redundant
    /// I/O; the winner in Figure 10).
    Message,
    /// Halo reads: redundant overlapping I/O, no messages.
    Overlap,
}

/// Options controlling a partitioned read.
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Contiguous access level: independent (`Level0`) or collective
    /// (`Level1`). `Level3` is not a contiguous mode; use [`crate::views`].
    pub level: AccessLevel,
    /// Boundary repair strategy.
    pub strategy: BoundaryStrategy,
    /// Bytes per process per iteration. `None` divides the file equally
    /// (single iteration), as the paper does when no block size is given.
    pub block_size: Option<u64>,
    /// Upper bound on one record's size; sizes the receive buffers
    /// (message strategy) and the halo (overlap strategy). The paper uses
    /// 11 MB — its largest OSM polygon.
    pub max_geometry_bytes: u64,
    /// Record delimiter (newline for WKT-per-line files).
    pub delimiter: u8,
    /// MPI-IO hints used when opening the file.
    pub hints: Hints,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            level: AccessLevel::Level0,
            strategy: BoundaryStrategy::Message,
            block_size: None,
            max_geometry_bytes: 11 << 20,
            delimiter: b'\n',
            hints: Hints::default(),
        }
    }
}

impl ReadOptions {
    /// Sets the access level.
    pub fn with_level(mut self, level: AccessLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the boundary strategy.
    pub fn with_strategy(mut self, strategy: BoundaryStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the per-process block size.
    pub fn with_block_size(mut self, bytes: u64) -> Self {
        self.block_size = Some(bytes);
        self
    }

    /// Sets the maximum geometry size.
    pub fn with_max_geometry_bytes(mut self, bytes: u64) -> Self {
        self.max_geometry_bytes = bytes;
        self
    }
}

/// Reads this rank's partition of a record-delimited text file and returns
/// the raw text of the records it owns (concatenated, delimiter-separated).
///
/// Every rank must call this (the collective level and the ring exchanges
/// require full participation).
///
/// # Errors
/// Returns [`crate::CoreError::InvalidOptions`] without touching the file
/// when `block_size` is `Some(0)` (the per-iteration divisor) or
/// `max_geometry_bytes` is `0` (the halo / receive-buffer bound): both
/// previously produced divide-by-zero panics or silently empty halo reads
/// deep inside the strategies.
pub fn read_partition_text(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    opts: &ReadOptions,
) -> Result<String> {
    if opts.block_size == Some(0) {
        return Err(crate::CoreError::InvalidOptions(
            "block_size must be at least 1 byte (or None for an equal split)".into(),
        ));
    }
    if opts.max_geometry_bytes == 0 {
        return Err(crate::CoreError::InvalidOptions(
            "max_geometry_bytes must be nonzero: it bounds record size and sizes the \
             halo/receive buffers"
                .into(),
        ));
    }
    let file = MpiFile::open(fs, path, opts.hints)?;
    match opts.strategy {
        BoundaryStrategy::Message => read_blocked(comm, &file, opts),
        BoundaryStrategy::Overlap => read_overlap(comm, &file, opts),
    }
}

/// The full I/O + parse front half of the pipeline: partitioned read
/// followed by the local parse phase. Returns this rank's features.
/// Collective: every rank must call it with the same options.
pub fn read_features(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    opts: &ReadOptions,
    parser: &dyn GeometryParser,
) -> Result<Vec<Feature>> {
    let text = read_partition_text(comm, fs, path, opts)?;
    parse_buffer(comm, &text, parser)
}

/// Scans backwards from the end of `buf` for the last `delim`; returns its
/// index, or `None` when the buffer holds no delimiter at all (a record
/// larger than the block — the case the paper sizes blocks to avoid).
pub(crate) fn last_delim_pos(buf: &[u8], delim: u8) -> Option<usize> {
    buf.iter().rposition(|&b| b == delim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_delim_scan() {
        assert_eq!(last_delim_pos(b"ab\ncd\nef", b'\n'), Some(5));
        assert_eq!(last_delim_pos(b"ab\n", b'\n'), Some(2));
        assert_eq!(last_delim_pos(b"abcdef", b'\n'), None);
        assert_eq!(last_delim_pos(b"", b'\n'), None);
    }

    #[test]
    fn zero_options_are_rejected_before_any_io() {
        use mvio_msim::{Topology, World, WorldConfig};
        for (strategy, block_size, max_geom) in [
            (BoundaryStrategy::Message, Some(0u64), 11 << 20),
            (BoundaryStrategy::Overlap, Some(0), 11 << 20),
            (BoundaryStrategy::Message, Some(1024), 0u64),
            (BoundaryStrategy::Overlap, None, 0),
        ] {
            let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let fs = mvio_pfs::SimFs::new(mvio_pfs::FsConfig::gpfs_roger());
                fs.create("x.wkt", None)
                    .unwrap()
                    .append(b"POINT (1 2)\ta\n");
                let opts = ReadOptions {
                    strategy,
                    block_size,
                    max_geometry_bytes: max_geom,
                    ..ReadOptions::default()
                };
                match read_partition_text(comm, &fs, "x.wkt", &opts) {
                    Err(crate::CoreError::InvalidOptions(msg)) => msg,
                    other => panic!("expected InvalidOptions, got {other:?}"),
                }
            });
            assert!(
                out[0].contains("block_size") || out[0].contains("max_geometry_bytes"),
                "{:?}",
                out[0]
            );
        }
    }

    #[test]
    fn default_options_match_paper() {
        let o = ReadOptions::default();
        assert_eq!(o.max_geometry_bytes, 11 << 20); // the 11 MB bound
        assert_eq!(o.strategy, BoundaryStrategy::Message); // the winner
        assert_eq!(o.delimiter, b'\n');
    }
}
