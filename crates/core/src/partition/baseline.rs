//! The pre-MPI-Vector-IO baselines the paper replaced (§2, "Existing MPI
//! based approaches"): "we implemented redundant file reading by all
//! processes and master process distributing data to other workers. These
//! redundant and serial I/O strategies were slow, cumbersome, and
//! overwhelmed the memory capacity of individual nodes for larger data."
//!
//! Both are implemented faithfully so the headline claim — "the I/O is
//! improved by one to two orders of magnitude" (§1) — can be measured
//! rather than asserted.

use super::ReadOptions;
use crate::{CoreError, Result};
use mvio_msim::{Comm, MpiFile, Work};
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Tag for master-scatter share distribution.
const SCATTER_TAG: u64 = 0xBA5E;

/// Baseline 1 — **master read + scatter**: rank 0 reads the whole file
/// sequentially and sends each rank its share of complete records over
/// point-to-point messages. Returns this rank's text.
/// Collective: every rank must call it with the same options.
pub fn read_master_scatter(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    opts: &ReadOptions,
) -> Result<String> {
    let p = comm.size();
    if comm.rank() == 0 {
        let file = MpiFile::open(fs, path, opts.hints)?;
        let len = file.len() as usize;
        let mut buf = vec![0u8; len];
        // Sequential whole-file read on the master (chunked under the
        // ROMIO limit).
        let mut off = 0usize;
        while off < len {
            let take = (len - off).min(1 << 30);
            file.read_at(comm, off as u64, &mut buf[off..off + take])?;
            off += take;
        }
        // Split on record boundaries into p roughly equal shares.
        let shares = split_on_records(&buf, p, opts.delimiter);
        comm.charge(Work::CopyBytes { n: len as u64 });
        let mine = shares[0].to_vec();
        for (rank, share) in shares.iter().enumerate().skip(1) {
            comm.send(rank, SCATTER_TAG, share);
        }
        String::from_utf8(mine)
            .map_err(|e| CoreError::Partition(format!("master-scatter produced bad UTF-8: {e}")))
    } else {
        let share = comm.recv(0, SCATTER_TAG);
        String::from_utf8(share)
            .map_err(|e| CoreError::Partition(format!("master-scatter produced bad UTF-8: {e}")))
    }
}

/// Baseline 2 — **redundant reading**: every rank reads the entire file
/// and keeps only its share. No communication, maximal wasted I/O, and
/// per-rank memory equal to the whole file (the paper's "overwhelmed the
/// memory capacity" failure mode).
/// Collective: every rank must call it with the same options.
pub fn read_redundant(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    opts: &ReadOptions,
) -> Result<String> {
    let file = MpiFile::open(fs, path, opts.hints)?;
    let len = file.len() as usize;
    let mut buf = vec![0u8; len];
    let mut off = 0usize;
    while off < len {
        let take = (len - off).min(1 << 30);
        file.read_at(comm, off as u64, &mut buf[off..off + take])?;
        off += take;
    }
    let shares = split_on_records(&buf, comm.size(), opts.delimiter);
    let mine = shares[comm.rank()].to_vec();
    comm.charge(Work::CopyBytes { n: len as u64 });
    String::from_utf8(mine)
        .map_err(|e| CoreError::Partition(format!("redundant read produced bad UTF-8: {e}")))
}

/// Splits `buf` into `p` shares on record boundaries: share boundaries
/// advance to the next delimiter, so every record lands in exactly one
/// share.
fn split_on_records(buf: &[u8], p: usize, delim: u8) -> Vec<&[u8]> {
    let len = buf.len();
    let mut bounds = Vec::with_capacity(p + 1);
    bounds.push(0usize);
    for k in 1..p {
        let target = len * k / p;
        // audit: `bounds` is seeded with 0 above and only grows.
        let from_prev = *bounds.last().expect("non-empty");
        let start = target.max(from_prev);
        // Advance to just past the next delimiter.
        let cut = buf[start..]
            .iter()
            .position(|&b| b == delim)
            .map(|i| start + i + 1)
            .unwrap_or(len);
        bounds.push(cut.max(from_prev));
    }
    bounds.push(len);
    (0..p).map(|i| &buf[bounds[i]..bounds[i + 1]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::read_partition_text;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    fn build(records: usize) -> (Arc<SimFs>, Vec<String>) {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let recs: Vec<String> = (0..records)
            .map(|i| format!("rec{i:04}:{}", "d".repeat(5 + (i * 13) % 60)))
            .collect();
        let f = fs.create("b.txt", None).unwrap();
        f.append((recs.join("\n") + "\n").as_bytes());
        (fs, recs)
    }

    fn collect(per_rank: Vec<String>) -> Vec<String> {
        let mut all: Vec<String> = per_rank
            .iter()
            .flat_map(|t| t.lines().map(str::to_string))
            .filter(|l| !l.is_empty())
            .collect();
        all.sort();
        all
    }

    #[test]
    fn split_on_records_partitions_exactly() {
        let buf = b"aa\nbbb\nc\ndddd\ne\n";
        let shares = split_on_records(buf, 3, b'\n');
        assert_eq!(shares.len(), 3);
        let total: usize = shares.iter().map(|s| s.len()).sum();
        assert_eq!(total, buf.len());
        for s in &shares {
            if !s.is_empty() {
                assert_eq!(*s.last().unwrap(), b'\n', "share ends on a boundary");
            }
        }
    }

    #[test]
    fn master_scatter_delivers_exactly_once() {
        let (fs, recs) = build(60);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            read_master_scatter(comm, &fs, "b.txt", &ReadOptions::default()).unwrap()
        });
        let mut expect = recs.clone();
        expect.sort();
        assert_eq!(collect(out), expect);
    }

    #[test]
    fn redundant_read_delivers_exactly_once_but_reads_p_times_the_file() {
        let (fs, recs) = build(60);
        let file_len = fs.open("b.txt").unwrap().len();
        let fs2 = Arc::clone(&fs);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            read_redundant(comm, &fs2, "b.txt", &ReadOptions::default()).unwrap()
        });
        let mut expect = recs.clone();
        expect.sort();
        assert_eq!(collect(out), expect);
        // The defining waste: 4 ranks read 4x the file.
        assert_eq!(fs.stats().bytes_read(), 4 * file_len);
    }

    #[test]
    fn baselines_agree_with_algorithm1() {
        let (fs, _) = build(80);
        let fs2 = Arc::clone(&fs);
        let a1 = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            read_partition_text(comm, &fs2, "b.txt", &ReadOptions::default()).unwrap()
        });
        let (fsb, _) = build(80);
        let ms = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            read_master_scatter(comm, &fsb, "b.txt", &ReadOptions::default()).unwrap()
        });
        assert_eq!(collect(a1), collect(ms));
    }

    #[test]
    fn parallel_io_beats_both_baselines_on_striped_data() {
        // The paper's headline: parallel partitioned reads beat serial
        // master-scatter and redundant reading. The win materializes on
        // large *striped* files (a tiny single-OST file is legitimately
        // faster to read once, serially — which is also why the paper's
        // earlier systems got away with it before datasets grew).
        let build_striped = || {
            let fs = SimFs::new(FsConfig::lustre_comet());
            // ~18 MB: large enough that transfer and client bandwidth,
            // not per-request latency, dominate — the regime the paper's
            // datasets live in.
            let recs: Vec<String> = (0..400_000)
                .map(|i| format!("rec{i:06}:{}", "d".repeat(5 + (i * 13) % 60)))
                .collect();
            let f = fs
                .create("b.txt", Some(mvio_pfs::StripeSpec::new(16, 1 << 20)))
                .unwrap();
            f.append((recs.join("\n") + "\n").as_bytes());
            fs
        };
        let elapsed = |which: &str, fs: Arc<SimFs>| {
            fs.set_active_ranks(16);
            let which = which.to_string();
            let out = World::run(WorldConfig::new(Topology::new(4, 4)), move |comm| {
                let opts = ReadOptions::default();
                match which.as_str() {
                    "mvio" => read_partition_text(comm, &fs, "b.txt", &opts).unwrap(),
                    "master" => read_master_scatter(comm, &fs, "b.txt", &opts).unwrap(),
                    _ => read_redundant(comm, &fs, "b.txt", &opts).unwrap(),
                };
                comm.now()
            });
            out.into_iter().fold(0.0, f64::max)
        };
        let t_mvio = elapsed("mvio", build_striped());
        let t_master = elapsed("master", build_striped());
        let t_redundant = elapsed("redundant", build_striped());
        assert!(
            t_mvio < t_master,
            "parallel {t_mvio} must beat master-scatter {t_master}"
        );
        assert!(
            t_mvio < t_redundant,
            "parallel {t_mvio} must beat redundant {t_redundant}"
        );
    }
}
