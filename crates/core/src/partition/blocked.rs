//! Algorithm 1: iterative block reading with message-based boundary
//! repair (the paper's "dynamic file partitioning").

use super::{last_delim_pos, ReadOptions};
use crate::{CoreError, Result};
use mvio_msim::{AccessLevel, Comm, MpiFile, Work};

/// Ring tag reserved for boundary-fragment messages.
const FRAGMENT_TAG: u64 = 0xF1;

/// Reads this rank's partition using Algorithm 1.
///
/// The file is consumed in iterations of `N × block` bytes. In each
/// iteration every participating rank reads one block, scans back to the
/// last delimiter, and forwards the dangling tail to its ring successor
/// with the deadlock-free even/odd send-recv schedule (paper Algorithm 1,
/// lines 12–19). The fragment a rank receives from its predecessor is
/// prepended to its block, so every record is delivered exactly once. The
/// tail of the *last* participant wraps to rank 0 as the carry for the
/// next iteration (or, after the final iteration, becomes the file's last
/// record when the file does not end with a delimiter).
/// Collective: every rank must call it with the same options.
pub fn read_blocked(comm: &mut Comm, file: &MpiFile, opts: &ReadOptions) -> Result<String> {
    let n = comm.size() as u64;
    let rank = comm.rank() as u64;
    let file_size = file.len();
    let delim = opts.delimiter;

    if file_size == 0 {
        return Ok(String::new());
    }

    let block = opts.block_size.unwrap_or(file_size.div_ceil(n)).max(1);
    let chunk = n * block;
    let iterations = file_size.div_ceil(chunk);

    let mut out: Vec<u8> = Vec::new();
    // Fragment carried by rank 0 across iterations: the last participant's
    // tail precedes rank 0's block of the *next* iteration.
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = vec![0u8; block as usize];
    // Partition errors are *latched*, not returned immediately: the ring
    // protocol couples every rank to its neighbours each iteration, so a
    // rank that bailed out early would strand peers in `recv` forever
    // (the MPI analogue of returning without matching a posted receive).
    // The rank keeps participating with empty fragments and reports the
    // error once the protocol completes.
    let mut latched: Option<CoreError> = None;

    for i in 0..iterations {
        let global_offset = i * chunk;
        let start = global_offset + rank * block;
        let len = if start >= file_size {
            0
        } else {
            (file_size - start).min(block)
        };

        // Every rank calls the collective read (zero-length participation
        // is allowed); independent mode skips the call when idle.
        let got = match opts.level {
            AccessLevel::Level0 => {
                if len > 0 {
                    file.read_at(comm, start, &mut buf[..len as usize])?
                } else {
                    0
                }
            }
            AccessLevel::Level1 => file.read_at_all(comm, start, &mut buf[..len as usize])?,
            AccessLevel::Level3 => {
                return Err(CoreError::Partition(
                    "Level 3 is a non-contiguous mode; use views::read for it".into(),
                ))
            }
        };
        debug_assert_eq!(got as u64, len);

        // Participants this iteration: always the rank prefix 0..p.
        let remaining = file_size - global_offset;
        let p = remaining.div_ceil(block).min(n);
        if rank >= p {
            continue;
        }

        let block_bytes = &buf[..len as usize];
        let at_eof = start + len == file_size;

        // Split into body (..= last delimiter) and tail (after it). EOF
        // acts as a virtual delimiter: the whole final block is body, so a
        // file without a trailing delimiter still delivers its last record
        // to exactly one rank.
        let (body, mut tail): (&[u8], &[u8]) = if at_eof {
            (block_bytes, &[][..])
        } else {
            match last_delim_pos(block_bytes, delim) {
                Some(pos) => (&block_bytes[..=pos], &block_bytes[pos + 1..]),
                None => {
                    if latched.is_none() {
                        latched = Some(CoreError::Partition(format!(
                            "no delimiter in a {len}-byte block at offset {start}: a record \
                             exceeds the block size; raise block_size above max_geometry_bytes"
                        )));
                    }
                    (&[][..], &[][..])
                }
            }
        };
        if tail.len() as u64 > opts.max_geometry_bytes {
            if latched.is_none() {
                latched = Some(CoreError::Partition(format!(
                    "boundary fragment of {} bytes exceeds max_geometry_bytes {}",
                    tail.len(),
                    opts.max_geometry_bytes
                )));
            }
            tail = &[][..];
        }

        let next = ((rank + 1) % p) as usize;
        let prev = ((rank + p - 1) % p) as usize;

        let incoming: Vec<u8> = if p == 1 {
            // Single participant: the ring degenerates; the tail becomes
            // the next iteration's carry locally.
            let inc = std::mem::take(&mut carry);
            carry = tail.to_vec();
            inc
        } else if rank.is_multiple_of(2) {
            // Even ranks send first, then receive (Algorithm 1 line 12).
            comm.send(next, FRAGMENT_TAG, tail);
            let frag = comm.recv(prev, FRAGMENT_TAG);
            self_or_carry(rank, frag, &mut carry)
        } else {
            let frag = comm.recv(prev, FRAGMENT_TAG);
            comm.send(next, FRAGMENT_TAG, tail);
            self_or_carry(rank, frag, &mut carry)
        };

        // Assemble the owned text: predecessor fragment + body.
        comm.charge(Work::CopyBytes {
            n: (incoming.len() + body.len()) as u64,
        });
        out.extend_from_slice(&incoming);
        out.extend_from_slice(body);
        if at_eof && out.last() != Some(&delim) && !out.is_empty() {
            out.push(delim); // normalize the virtual EOF delimiter
        }
    }

    // After the final iteration, rank 0's carry is the file's unterminated
    // last record (empty when the file ends with a delimiter).
    if rank == 0 && !carry.is_empty() {
        out.extend_from_slice(&carry);
        out.push(delim);
    }

    if let Some(err) = latched {
        return Err(err);
    }
    String::from_utf8(out)
        .map_err(|e| CoreError::Partition(format!("partition produced invalid UTF-8: {e}")))
}

/// Rank 0's received fragment belongs to the *next* iteration's block (it
/// precedes offset `(i+1)·chunk`); other ranks consume it immediately.
fn self_or_carry(rank: u64, frag: Vec<u8>, carry: &mut Vec<u8>) -> Vec<u8> {
    if rank == 0 {
        let inc = std::mem::take(carry);
        *carry = frag;
        inc
    } else {
        frag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::BoundaryStrategy;
    use crate::ReadOptions;
    use mvio_msim::{Hints, Topology, World, WorldConfig};
    use mvio_pfs::{FsConfig, SimFs, StripeSpec};
    use std::sync::Arc;

    /// Builds a WKT-ish file of numbered records of wildly varying length.
    fn build_file(fs: &Arc<SimFs>, path: &str, records: &[String]) {
        let f = fs.create(path, Some(StripeSpec::new(4, 256))).unwrap();
        let mut text = String::new();
        for r in records {
            text.push_str(r);
            text.push('\n');
        }
        f.append(text.as_bytes());
    }

    fn records(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                // Lengths vary with a heavy tail: record 17 is huge.
                let pad = if i % 17 == 0 { 400 } else { 5 + (i * 7) % 90 };
                format!("REC{i:04}:{}", "x".repeat(pad))
            })
            .collect()
    }

    fn gather_all(topo: Topology, opts: ReadOptions, recs: &[String]) -> Vec<String> {
        let fs = SimFs::new(FsConfig::test_tiny());
        build_file(&fs, "f.txt", recs);
        let per_rank = World::run(WorldConfig::new(topo), |comm| {
            crate::partition::read_partition_text(comm, &fs, "f.txt", &opts).unwrap()
        });
        let mut all = Vec::new();
        for text in per_rank {
            for line in text.lines() {
                if !line.is_empty() {
                    all.push(line.to_string());
                }
            }
        }
        all
    }

    #[test]
    fn exactly_once_delivery_equal_split() {
        let recs = records(100);
        let opts = ReadOptions::default();
        let all = gather_all(Topology::new(2, 3), opts, &recs);
        assert_eq!(
            all, recs,
            "every record exactly once, in order across ranks"
        );
    }

    #[test]
    fn exactly_once_delivery_small_blocks_many_iterations() {
        let recs = records(120);
        // Tiny blocks force many iterations and lots of ring fragments.
        // Iterations interleave records across ranks, so compare as sets.
        let opts = ReadOptions::default().with_block_size(512);
        let mut all = gather_all(Topology::new(2, 2), opts, &recs);
        all.sort();
        let mut expect = recs.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn file_without_trailing_newline() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("f.txt", None).unwrap();
        f.append(b"alpha\nbeta\ngamma"); // no trailing delimiter
        let per_rank = World::run(WorldConfig::new(Topology::new(1, 3)), |comm| {
            crate::partition::read_partition_text(
                comm,
                &fs,
                "f.txt",
                &ReadOptions::default().with_block_size(6),
            )
            .unwrap()
        });
        let mut all: Vec<String> = per_rank
            .iter()
            .flat_map(|t| t.lines().map(str::to_string))
            .filter(|l| !l.is_empty())
            .collect();
        all.sort();
        assert_eq!(all, vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn collective_level1_matches_level0() {
        let recs = records(64);
        let l0 = gather_all(
            Topology::new(2, 2),
            ReadOptions::default().with_block_size(777),
            &recs,
        );
        let l1 = gather_all(
            Topology::new(2, 2),
            ReadOptions::default()
                .with_block_size(777)
                .with_level(mvio_msim::AccessLevel::Level1),
            &recs,
        );
        assert_eq!(l0, l1);
        let mut sorted = l0.clone();
        sorted.sort();
        let mut expect = recs.clone();
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn record_larger_than_block_is_reported() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("f.txt", None).unwrap();
        let huge = format!("{}\nshort\n", "y".repeat(5000));
        f.append(huge.as_bytes());
        let opts = ReadOptions::default().with_block_size(64);
        let results = World::run(WorldConfig::new(Topology::new(1, 2)), |comm| {
            crate::partition::read_partition_text(comm, &fs, "f.txt", &opts)
        });
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(CoreError::Partition(_)))));
    }

    #[test]
    fn single_rank_reads_everything() {
        let recs = records(30);
        let all = gather_all(Topology::single_node(1), ReadOptions::default(), &recs);
        assert_eq!(all, recs);
    }

    #[test]
    fn empty_file_yields_nothing() {
        let fs = SimFs::new(FsConfig::test_tiny());
        fs.create("empty.txt", None).unwrap();
        let per_rank = World::run(WorldConfig::new(Topology::new(1, 2)), |comm| {
            crate::partition::read_partition_text(comm, &fs, "empty.txt", &ReadOptions::default())
                .unwrap()
        });
        assert!(per_rank.iter().all(String::is_empty));
    }

    #[test]
    fn more_ranks_than_blocks() {
        // 8 ranks but a file so small only a few blocks exist; the idle
        // ranks must participate gracefully and own nothing.
        let recs: Vec<String> = (0..5).map(|i| format!("tiny{i}")).collect();
        let opts = ReadOptions::default().with_block_size(16);
        let mut all = gather_all(Topology::new(2, 4), opts, &recs);
        all.sort();
        let mut expect = recs.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn message_strategy_does_no_redundant_io() {
        let recs = records(80);
        let fs = SimFs::new(FsConfig::test_tiny());
        build_file(&fs, "f.txt", &recs);
        let file_len = fs.open("f.txt").unwrap().len();
        let opts = ReadOptions {
            level: AccessLevel::Level0,
            strategy: BoundaryStrategy::Message,
            block_size: Some(512),
            max_geometry_bytes: 4096,
            delimiter: b'\n',
            hints: Hints::default(),
        };
        World::run(WorldConfig::new(Topology::new(1, 4)), |comm| {
            crate::partition::read_partition_text(comm, &fs, "f.txt", &opts).unwrap()
        });
        // Total bytes read off the filesystem equals the file length:
        // no halo, no re-reads (the paper's key advantage of Algorithm 1).
        assert_eq!(fs.stats().bytes_read(), file_len);
    }
}
