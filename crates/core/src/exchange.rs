//! The all-to-all geometry exchange (paper §4.2.3): serialization, the
//! two-round `Alltoall` + `Alltoallv` protocol, the sliding-window
//! variant for memory-bounded runs — and the chunked, overlapped
//! [`ExchangePlan`] that streams the exchange in bounded rounds over the
//! nonblocking collectives in [`mvio_msim::request`].
//!
//! "Before actually sending the entire co-ordinate data using
//! MPI_Alltoallv, the processes exchange the buffer related information
//! among them using MPI_Alltoall which is then used to calculate the
//! receiver side count and displacement arrays of MPI_Alltoallv."
//!
//! ## Chunked overlap
//!
//! The blocking protocol ships each rank's whole payload in one
//! `Alltoallv` round, so upstream serialization, the transfer, and
//! downstream deserialization are strictly serial. The [`ExchangePlan`]
//! instead splits every destination payload into record-aligned chunks of
//! at most [`ExchangeOptions::chunk`] bytes and pipelines the rounds: each
//! round's `ialltoallv` is posted, then the *next* round's payload is
//! produced (and the *previous* round's receives deserialized and drained
//! into the consumer) while the transfer is in flight, and only then is
//! the round completed with a `wait`. Round `r`'s size exchange carries a
//! continuation flag in the high bit, so ranks whose payloads need
//! different round counts agree on termination without a separate
//! counting collective. With `chunk = unlimited` the plan degenerates to
//! exactly the single-round blocking protocol — bit-identical received
//! data *and* virtual time — and for any finite chunk size the collected
//! result is still bit-identical (per-source streams are reassembled in
//! source-rank order); only the time moves.
//!
//! Routing is decomposition-agnostic: pairs go to whichever rank the
//! [`SpatialDecomposition`] assigns their cell to, whether that is the
//! paper's round-robin uniform grid or one of the skew-aware policies in
//! [`crate::decomp`].
//!
//! ## Wire format
//!
//! Every payload byte on the wire is a concatenation of
//! `[u64 cell][u32 wkb_len][wkb][u32 ud_len][ud]` records (little-endian,
//! no inter-record padding; see [`serialize_record`]). The byte-level
//! normative specification — checked narrowing, record alignment under
//! chunking, and frame-validation rules — is `docs/FORMAT.md` §1 in the
//! repository root, shared with the snapshot payload in
//! [`crate::snapshot`].

use crate::decomp::SpatialDecomposition;
use crate::{CoreError, Feature, Result};
use mvio_geom::wkb;
use mvio_msim::{Comm, ProgressEngine, Work};

/// Environment variable consulted when [`ExchangeOptions::chunk`] is
/// [`ExchangeChunk::Auto`]: a byte count caps each destination's
/// per-round payload; `0`, `inf` or `unlimited` (or unset) selects the
/// single-round blocking protocol.
pub const CHUNK_ENV: &str = "MVIO_EXCHANGE_CHUNK";

/// High bit of a size-exchange value: "this rank will post at least one
/// more round after this one".
const MORE_BIT: u64 = 1 << 63;

/// Per-destination round payload cap for the chunked exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeChunk {
    /// Resolve through the [`CHUNK_ENV`] environment variable (the
    /// default); unset means [`ExchangeChunk::Unlimited`].
    #[default]
    Auto,
    /// Single-round blocking protocol (the `chunk = ∞` degenerate case).
    Unlimited,
    /// At most this many bytes per destination per round (record-aligned;
    /// a single record larger than the cap still ships whole).
    Bytes(u64),
}

impl ExchangeChunk {
    /// The byte cap this configuration resolves to (`None` = unlimited).
    ///
    /// `Auto` reads [`CHUNK_ENV`]: a byte count with an optional
    /// `k`/`kb`/`kib` or `m`/`mb`/`mib` suffix (case-insensitive,
    /// binary multiples), or `0`/`inf`/`unlimited` for the blocking
    /// single round.
    ///
    /// # Panics
    ///
    /// `Auto` panics on an unparseable [`CHUNK_ENV`] value: silently
    /// falling back to the blocking protocol would make every benchmark
    /// run under a typo'd knob measure the wrong configuration.
    pub fn resolve(self) -> Option<u64> {
        match self {
            ExchangeChunk::Auto => {
                let v = std::env::var(CHUNK_ENV).ok()?;
                let t = v.trim();
                if t == "0" || t.eq_ignore_ascii_case("inf") || t.eq_ignore_ascii_case("unlimited")
                {
                    return None;
                }
                let lower = t.to_ascii_lowercase();
                let (digits, unit) = match lower.find(|c: char| !c.is_ascii_digit()) {
                    Some(pos) => lower.split_at(pos),
                    None => (lower.as_str(), ""),
                };
                let scale = match unit.trim() {
                    "" => 1u64,
                    "k" | "kb" | "kib" => 1 << 10,
                    "m" | "mb" | "mib" => 1 << 20,
                    _ => panic!(
                        "invalid {CHUNK_ENV} value {v:?}: expected bytes with an optional \
                         k/kb/kib or m/mb/mib suffix, or 0/inf/unlimited"
                    ),
                };
                let n: u64 = digits.parse().unwrap_or_else(|_| {
                    panic!(
                        "invalid {CHUNK_ENV} value {v:?}: expected bytes with an optional \
                         k/kb/kib or m/mb/mib suffix, or 0/inf/unlimited"
                    )
                });
                Some(n.saturating_mul(scale).max(1))
            }
            ExchangeChunk::Unlimited => None,
            ExchangeChunk::Bytes(n) => Some(n.max(1)),
        }
    }
}

/// Environment variable consulted when [`ZeroCopy::Auto`] resolves: `on`
/// / `1` / `true` selects the zero-copy read path (the default when
/// unset), `off` / `0` / `false` the owned per-record deserialization.
pub const ZEROCOPY_ENV: &str = "MVIO_ZEROCOPY";

/// Read-path selector for the exchange/snapshot/serve consumers: borrow
/// received wire frames in place (zero-copy) or materialize owned
/// [`Feature`]s per record. Results are bit-identical either way; only
/// the allocation behavior and the charged deserialization time differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ZeroCopy {
    /// Resolve through [`ZEROCOPY_ENV`] (the default); unset means on.
    #[default]
    Auto,
    /// Force the zero-copy path regardless of the environment.
    On,
    /// Force the owned path regardless of the environment.
    Off,
}

impl ZeroCopy {
    /// `true` when the zero-copy path is selected.
    ///
    /// # Panics
    ///
    /// `Auto` panics on an unrecognized [`ZEROCOPY_ENV`] value: silently
    /// picking a default would make every run under a typo'd knob measure
    /// the wrong configuration.
    pub fn resolve(self) -> bool {
        match self {
            ZeroCopy::Auto => match std::env::var(ZEROCOPY_ENV) {
                Err(_) => true,
                Ok(v) => {
                    let t = v.trim();
                    if t == "1" || t.eq_ignore_ascii_case("on") || t.eq_ignore_ascii_case("true") {
                        true
                    } else if t == "0"
                        || t.eq_ignore_ascii_case("off")
                        || t.eq_ignore_ascii_case("false")
                    {
                        false
                    } else {
                        panic!(
                            "invalid {ZEROCOPY_ENV} value {v:?}: expected on/1/true or off/0/false"
                        )
                    }
                }
            },
            ZeroCopy::On => true,
            ZeroCopy::Off => false,
        }
    }
}

/// Options for one exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExchangeOptions {
    /// Number of sliding-window phases. 1 = single-shot (the default);
    /// larger values exchange "spatial data contained in a chunk of cells"
    /// per phase to bound peak memory (paper: "Handling large data
    /// exchange"). `0` is treated as 1.
    pub windows: u32,
    /// Per-destination byte cap for each pipelined round of the
    /// [`ExchangePlan`] (within each window).
    pub chunk: ExchangeChunk,
}

impl ExchangeOptions {
    /// Single-window options with an explicit chunk policy.
    pub fn with_chunk(chunk: ExchangeChunk) -> Self {
        ExchangeOptions { windows: 1, chunk }
    }
}

/// Counters for one pipelined round of an exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundStats {
    /// Records this rank sent in the round.
    pub records_sent: u64,
    /// Bytes this rank sent in the round.
    pub bytes_sent: u64,
    /// Records this rank received in the round.
    pub records_received: u64,
    /// Bytes this rank received in the round.
    pub bytes_received: u64,
}

/// Counters describing one exchange, used by the breakdown reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExchangeStats {
    /// Bytes this rank serialized and sent.
    pub bytes_sent: u64,
    /// Bytes this rank received and deserialized.
    pub bytes_received: u64,
    /// Records sent (cell-replicated).
    pub records_sent: u64,
    /// Records received.
    pub records_received: u64,
    /// Sliding-window phases executed.
    pub phases: u32,
    /// Pipelined `Alltoallv` rounds executed across all windows (1 per
    /// window under the unlimited/blocking degenerate case).
    pub rounds: u32,
    /// Per-round sent/received record and byte counts, in round order
    /// across windows.
    pub per_round: Vec<RoundStats>,
    /// Virtual seconds of upstream compute folded into the exchange's
    /// overlap engine (0 for the non-streamed paths).
    pub overlapped_compute_s: f64,
    /// Virtual seconds of communication left exposed on the critical path
    /// after overlap (the whole transfer time in the blocking case).
    pub exposed_wait_s: f64,
}

impl ExchangeStats {
    /// Folds another exchange's counters into this one (used across
    /// sliding-window phases).
    fn absorb(&mut self, other: ExchangeStats) {
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.records_sent += other.records_sent;
        self.records_received += other.records_received;
        self.rounds += other.rounds;
        self.per_round.extend(other.per_round);
        self.overlapped_compute_s += other.overlapped_compute_s;
        self.exposed_wait_s += other.exposed_wait_s;
    }
}

/// Wire format of one record: `[u64 cell][u32 wkb_len][wkb][u32 ud_len][ud]`.
///
/// Length fields are checked conversions: a geometry or userdata payload
/// over `u32::MAX` bytes is an error, not a silently truncated length that
/// the receiver would misparse as a corrupt stream.
///
/// `scratch` is a caller-owned staging buffer reused across records: the
/// geometry encodes into it behind a [`wkb::encoded_len`] size pre-pass
/// (one exact `reserve`, no growth checks in the coordinate loop), then
/// lands in `out` as one bulk copy. Hot loops serialize millions of
/// records; the old per-record `wkb::encode` allocated and dropped a
/// fresh `Vec` for every one of them. (Shared with the ingest pipeline's
/// worker threads and, since the serving layer, with external callers
/// such as `sjoin`'s `QueryEngine`, which rides queries and result
/// records over the same wire format.)
pub fn serialize_record(
    cell: u32,
    feature: &Feature,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<()> {
    let too_big = |what: &str, len: usize| {
        CoreError::Partition(format!(
            "exchange serialization: {what} of {len} bytes exceeds the u32 wire-format limit"
        ))
    };
    wkb::encode_into_scratch(&feature.geometry, scratch);
    let glen = u32::try_from(scratch.len()).map_err(|_| too_big("geometry", scratch.len()))?;
    let ulen = u32::try_from(feature.userdata.len())
        .map_err(|_| too_big("userdata", feature.userdata.len()))?;
    out.reserve(16 + scratch.len() + feature.userdata.len());
    out.extend_from_slice(&(cell as u64).to_le_bytes());
    out.extend_from_slice(&glen.to_le_bytes());
    out.extend_from_slice(scratch);
    out.extend_from_slice(&ulen.to_le_bytes());
    out.extend_from_slice(feature.userdata.as_bytes());
    Ok(())
}

/// Reads the little-endian `u64` at `buf[at..at + 8]`; the caller has
/// already bounds-checked the slice.
fn le_u64(buf: &[u8], at: usize) -> Result<u64> {
    let bytes = buf
        .get(at..at + 8)
        .ok_or_else(|| CoreError::Frame(format!("u64 field at {at} past end of frame")))?;
    // audit: the slice is exactly 8 bytes by construction of the range.
    Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
}

/// Reads the little-endian `u32` length field at `buf[at..at + 4]` as a
/// checked `usize`.
fn le_len(buf: &[u8], at: usize) -> Result<usize> {
    let bytes = buf
        .get(at..at + 4)
        .ok_or_else(|| CoreError::Frame(format!("length field at {at} past end of frame")))?;
    // audit: the slice is exactly 4 bytes by construction of the range.
    let len = u32::from_le_bytes(bytes.try_into().expect("4-byte slice"));
    usize::try_from(len)
        .map_err(|_| CoreError::Frame(format!("length {len} does not fit this target's usize")))
}

/// Checked narrowing of a wire cell word to the `u32` cell-id space; a
/// corrupted high word must surface as an error, never alias a valid
/// cell by truncation.
fn cell_from_wire(word: u64) -> Result<u32> {
    u32::try_from(word)
        .map_err(|_| CoreError::Frame(format!("cell word {word:#x} exceeds the u32 cell-id space")))
}

fn deserialize_records(mut buf: &[u8]) -> Result<Vec<(u32, Feature)>> {
    let mut out = Vec::new();
    let bad = |msg: &str| CoreError::Frame(format!("exchange deserialization: {msg}"));
    while !buf.is_empty() {
        if buf.len() < 12 {
            return Err(bad("truncated header"));
        }
        let cell = cell_from_wire(le_u64(buf, 0)?)?;
        let glen = le_len(buf, 8)?;
        buf = &buf[12..];
        if buf.len() < glen.saturating_add(4) {
            return Err(bad("truncated geometry"));
        }
        let (geometry, used) = wkb::decode(&buf[..glen]).map_err(|e| CoreError::Parse {
            record: "<wkb>".into(),
            source: e,
        })?;
        debug_assert_eq!(used, glen);
        buf = &buf[glen..];
        let ulen = le_len(buf, 0)?;
        buf = &buf[4..];
        if buf.len() < ulen {
            return Err(bad("truncated userdata"));
        }
        let userdata =
            String::from_utf8(buf[..ulen].to_vec()).map_err(|_| bad("non-UTF8 userdata"))?;
        buf = &buf[ulen..];
        out.push((cell, Feature { geometry, userdata }));
    }
    Ok(out)
}

/// Total wire length of the record starting at `buf[pos..]`, without
/// decoding it — used to cut record-aligned chunks out of a serialized
/// buffer (and by the snapshot reader to walk persisted sections, which
/// use the same wire format).
pub(crate) fn record_len_at(buf: &[u8], pos: usize) -> Result<usize> {
    let bad = |msg: &str| CoreError::Frame(format!("exchange chunking: {msg}"));
    let rest = &buf[pos..];
    if rest.len() < 12 {
        return Err(bad("truncated record header"));
    }
    let glen = le_len(rest, 8)?;
    // Length fields are u32, so these sums stay far below usize::MAX;
    // saturating keeps the comparisons safe even against torn input.
    if rest.len() < glen.saturating_add(16) {
        return Err(bad("truncated geometry"));
    }
    let ulen = le_len(rest, 12 + glen)?;
    if rest.len() < 16usize.saturating_add(glen).saturating_add(ulen) {
        return Err(bad("truncated userdata"));
    }
    Ok(16 + glen + ulen)
}

/// One record of the exchange wire format, borrowed in place from a
/// received (and [`validate_frames`]-checked) buffer: nothing is copied
/// until a consumer decides the record survives its filter. The geometry
/// bytes decode on demand through [`wkb::decode_ref`].
#[derive(Debug, Clone, Copy)]
pub struct RecordFrame<'a> {
    /// The record's grid cell.
    pub cell: u32,
    /// The WKB geometry bytes (already validated by the zero-copy
    /// decoder, so `wkb::decode_ref(wkb)` cannot fail).
    pub wkb: &'a [u8],
    /// The record's userdata payload (already validated UTF-8).
    pub userdata: &'a str,
}

/// Validates one received wire buffer without materializing anything:
/// walks every frame, bounds-checks the header fields, zero-copy-decodes
/// the geometry (the full [`wkb::decode_ref`] check set — exactly what
/// the owned `deserialize_records` enforces) and checks the userdata is
/// UTF-8. Returns the record count. Corruption surfaces as the same typed
/// [`CoreError::Frame`] / [`CoreError::Parse`] errors the owned path
/// produces. Not collective — pure local validation.
pub fn validate_frames(buf: &[u8]) -> Result<u64> {
    let bad = |msg: &str| CoreError::Frame(format!("exchange deserialization: {msg}"));
    let mut pos = 0usize;
    let mut records = 0u64;
    while pos < buf.len() {
        let len = record_len_at(buf, pos)?;
        cell_from_wire(le_u64(buf, pos)?)?;
        let glen = le_len(buf, pos + 8)?;
        let wkb_bytes = &buf[pos + 12..pos + 12 + glen];
        let (_, used) = wkb::decode_ref(wkb_bytes).map_err(|e| CoreError::Parse {
            record: "<wkb>".into(),
            source: e,
        })?;
        if used != glen {
            return Err(bad("geometry length disagrees with its WKB payload"));
        }
        let ulen = le_len(buf, pos + 12 + glen)?;
        let ud = &buf[pos + 16 + glen..pos + 16 + glen + ulen];
        std::str::from_utf8(ud).map_err(|_| bad("non-UTF8 userdata"))?;
        pos += len;
        records += 1;
    }
    Ok(records)
}

/// Iterates the record frames of one buffer previously accepted by
/// [`validate_frames`]. Walking is infallible: every bound was checked
/// during validation.
pub fn record_frames(buf: &[u8]) -> FrameIter<'_> {
    FrameIter { buf, pos: 0 }
}

/// Counts the record frames in a buffer by walking its length headers
/// (no per-record decoding — the frames were already validated).
fn count_frames(buf: &[u8]) -> Result<u64> {
    let mut pos = 0usize;
    let mut n = 0u64;
    while pos < buf.len() {
        pos += record_len_at(buf, pos)?;
        n += 1;
    }
    Ok(n)
}

/// Iterator over the borrowed [`RecordFrame`]s of one validated buffer.
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = RecordFrame<'a>;

    fn next(&mut self) -> Option<RecordFrame<'a>> {
        if self.pos >= self.buf.len() {
            return None;
        }
        // audit: constructed only over buffers validate_frames accepted.
        let len = record_len_at(self.buf, self.pos).expect("validated frame");
        // audit: validate_frames range-checked the cell word of every frame.
        let cell = cell_from_wire(le_u64(self.buf, self.pos).expect("validated frame"))
            .expect("validated frame"); // audit: range-checked during validation.
                                        // audit: validate_frames bounds-checked both length headers.
        let glen = le_len(self.buf, self.pos + 8).expect("validated frame");
        let wkb = &self.buf[self.pos + 12..self.pos + 12 + glen];
        // audit: validate_frames bounds-checked both length headers.
        let ulen = le_len(self.buf, self.pos + 12 + glen).expect("validated frame");
        let ud = &self.buf[self.pos + 16 + glen..self.pos + 16 + glen + ulen];
        // audit: validate_frames checked the userdata is UTF-8.
        let userdata = std::str::from_utf8(ud).expect("validated frame");
        self.pos += len;
        Some(RecordFrame {
            cell,
            wkb,
            userdata,
        })
    }
}

/// The raw, validated wire buffers one exchange (or one sliding window of
/// it) received, kept per source rank so iteration matches the owned
/// path's source-rank-order reassembly — the rule that keeps every chunk
/// policy bit-identical. Rounds append to their source's buffer; nothing
/// is deserialized.
#[derive(Debug, Clone, Default)]
pub struct FrameStore {
    per_src: Vec<Vec<u8>>,
    records: u64,
}

impl FrameStore {
    /// An empty store for a `p`-rank world.
    pub fn new(p: usize) -> Self {
        FrameStore {
            per_src: vec![Vec::new(); p],
            records: 0,
        }
    }

    /// Folds one completed round's validated buffers (indexed by source
    /// rank) in. The first round per source moves its buffer wholesale
    /// (the blocking single-round case stays copy-free); later rounds
    /// append.
    fn collect(&mut self, round: Vec<Vec<u8>>, records: u64) {
        debug_assert_eq!(round.len(), self.per_src.len());
        for (src, buf) in round.into_iter().enumerate() {
            if self.per_src[src].is_empty() {
                self.per_src[src] = buf;
            } else {
                self.per_src[src].extend_from_slice(&buf);
            }
        }
        self.records += records;
    }

    /// Total records across all sources.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total wire bytes held.
    pub fn bytes(&self) -> u64 {
        self.per_src.iter().map(|b| b.len() as u64).sum()
    }

    /// Iterates every record frame in source-rank order — the exact
    /// record order of the owned path's collected output.
    pub fn frames(&self) -> impl Iterator<Item = RecordFrame<'_>> {
        self.per_src.iter().flat_map(|buf| record_frames(buf))
    }
}

/// Exchanges `(cell, feature)` pairs so that every pair lands on the rank
/// owning its cell under `decomp`. Input pairs may reference any cells;
/// the output contains exactly the pairs owned by this rank, from all
/// ranks, in source-rank order (bit-identical for every chunk policy).
///
/// The protocol per window: serialize per destination → [`ExchangePlan`]
/// (sizes `Alltoall` + chunked `Alltoallv` rounds) → deserialize.
/// Serialization and deserialization charge the rank's clock (they are
/// the "communication buffer management overhead" in the paper's
/// breakdown figures).
/// Collective: every rank must call it with its own pairs.
pub fn exchange_features<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    pairs: Vec<(u32, Feature)>,
    decomp: &D,
    opts: &ExchangeOptions,
) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
    let p = comm.size();
    // Reassemble source-rank order *within each window*, appending windows
    // in order — the exact ordering of the historic blocking protocol for
    // any window count and chunk policy.
    let mut collector = PerSourceCollector::new(p);
    let mut received: Vec<(u32, Feature)> = Vec::new();
    let mut current_window = 0usize;
    let stats = exchange_features_inner(
        comm,
        pairs,
        decomp,
        opts,
        &mut WindowSink::Records(&mut |window, _, per_src| {
            if window != current_window {
                collector.drain_into(&mut received);
                current_window = window;
            }
            collector.collect(per_src);
            Ok(())
        }),
    )?;
    collector.drain_into(&mut received);
    Ok((received, stats))
}

/// Like [`exchange_features`], but hands the received pairs back as one
/// batch per sliding window instead of one concatenated vector, so batch
/// consumers ([`crate::framework::FilterRefine::run_refine_batched`])
/// can take them without a concatenation pass. Each window's batch is
/// reassembled in source-rank order, so the batches — and therefore any
/// order-sensitive consumer — are **bit-identical for every chunk
/// policy**; the rounds within a window still deserialize incrementally
/// while later rounds are in flight.
/// Collective: every rank must call it with the same window count.
pub fn exchange_features_windows<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    pairs: Vec<(u32, Feature)>,
    decomp: &D,
    opts: &ExchangeOptions,
) -> Result<(Vec<Vec<(u32, Feature)>>, ExchangeStats)> {
    let p = comm.size();
    let mut collector = PerSourceCollector::new(p);
    let mut batches: Vec<Vec<(u32, Feature)>> = Vec::new();
    let mut current_window = 0usize;
    let stats = exchange_features_inner(
        comm,
        pairs,
        decomp,
        opts,
        &mut WindowSink::Records(&mut |window, _, per_src| {
            if window != current_window {
                let mut batch = Vec::new();
                collector.drain_into(&mut batch);
                batches.push(batch);
                current_window = window;
            }
            collector.collect(per_src);
            Ok(())
        }),
    )?;
    let mut batch = Vec::new();
    collector.drain_into(&mut batch);
    batches.push(batch);
    Ok((batches, stats))
}

/// The zero-copy counterpart of [`exchange_features_windows`]: one
/// [`FrameStore`] of validated wire buffers per sliding window, never
/// materializing owned [`Feature`]s on the receive side. Record order
/// under [`FrameStore::frames`] matches the owned batches exactly, for
/// every chunk policy; only the validation scan ([`Work::CopyBytes`]) is
/// charged where the owned path pays per-record deserialization.
/// Collective: every rank must call it with its own pairs.
pub fn exchange_features_frames_windows<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    pairs: Vec<(u32, Feature)>,
    decomp: &D,
    opts: &ExchangeOptions,
) -> Result<(Vec<FrameStore>, ExchangeStats)> {
    let p = comm.size();
    let mut stores: Vec<FrameStore> = Vec::new();
    let mut current = FrameStore::new(p);
    let mut current_window = 0usize;
    let stats = exchange_features_inner(
        comm,
        pairs,
        decomp,
        opts,
        &mut WindowSink::Frames(&mut |window, _, bufs| {
            if window != current_window {
                stores.push(std::mem::replace(&mut current, FrameStore::new(p)));
                current_window = window;
            }
            let records = bufs
                .iter()
                .try_fold(0u64, |n, b| Ok::<u64, CoreError>(n + count_frames(b)?))?;
            current.collect(bufs, records);
            Ok(())
        }),
    )?;
    stores.push(current);
    Ok((stores, stats))
}

/// Accumulates per-round, per-source record batches and drains them in
/// source-rank order — the reassembly rule that keeps every chunk policy
/// bit-identical to the single-round blocking protocol. Shared by
/// [`exchange_features`], [`ExchangePlan::run_batch`] and the fused
/// pipeline stage.
#[derive(Debug)]
pub(crate) struct PerSourceCollector {
    per_src: Vec<Vec<(u32, Feature)>>,
}

impl PerSourceCollector {
    pub(crate) fn new(p: usize) -> Self {
        PerSourceCollector {
            per_src: (0..p).map(|_| Vec::new()).collect(),
        }
    }

    /// Folds one round's received records (indexed by source rank) in.
    pub(crate) fn collect(&mut self, round: Vec<Vec<(u32, Feature)>>) {
        debug_assert_eq!(round.len(), self.per_src.len());
        for (src, mut recs) in round.into_iter().enumerate() {
            self.per_src[src].append(&mut recs);
        }
    }

    /// Appends everything collected so far to `out` in source-rank order
    /// and resets the collector.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<(u32, Feature)>) {
        for src in &mut self.per_src {
            out.append(src);
        }
    }
}

/// The per-window consumers of [`exchange_features_inner`]: owned
/// per-source records, or validated raw wire buffers. Both receive
/// `(window, round, payload)` for every completed round, in
/// window-then-round order.
enum WindowSink<'s> {
    /// Owned materialization per record.
    Records(&'s mut dyn FnMut(usize, usize, Vec<Vec<(u32, Feature)>>) -> Result<()>),
    /// Validated raw buffers, borrowed in place by the consumer.
    Frames(&'s mut dyn FnMut(usize, usize, Vec<Vec<u8>>) -> Result<()>),
}

/// Window loop shared by [`exchange_features`],
/// [`exchange_features_windows`] and
/// [`exchange_features_frames_windows`]; `sink` receives every completed
/// round in window-then-round order.
fn exchange_features_inner<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    pairs: Vec<(u32, Feature)>,
    decomp: &D,
    opts: &ExchangeOptions,
    sink: &mut WindowSink<'_>,
) -> Result<ExchangeStats> {
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );
    let num_cells = decomp.num_cells();
    let windows = opts.windows.max(1).min(num_cells.max(1));
    let mut stats = ExchangeStats {
        phases: windows,
        ..Default::default()
    };
    let plan = ExchangePlan::new(comm, opts);

    // Pre-bucket pairs by window to avoid rescanning per phase.
    let cells_per_window = num_cells.div_ceil(windows).max(1);
    let mut by_window: Vec<Vec<(u32, Feature)>> = (0..windows).map(|_| Vec::new()).collect();
    for (cell, f) in pairs {
        let w = (cell / cells_per_window).min(windows - 1);
        by_window[w as usize].push((cell, f));
    }

    // A failure in one window must not stop this rank from entering the
    // remaining windows' collectives — that would strand the peers at
    // their next rendezvous. The first error is parked here; later
    // windows run with an empty payload and a discarding sink, and the
    // error is returned once every window has completed.
    let mut deferred: Option<CoreError> = None;
    let mut scratch = Vec::new();
    for (window, window_pairs) in by_window.into_iter().enumerate() {
        // Serialize per destination rank (charged per object: the paper's
        // "buffer management overhead in serialization").
        let mut batch = SerializedBatch::empty(p);
        if deferred.is_none() {
            let mut serialize = || -> Result<()> {
                for (cell, feature) in &window_pairs {
                    let dst = decomp.cell_to_rank(*cell);
                    serialize_record(*cell, feature, &mut scratch, &mut batch.bufs[dst])?;
                    batch.records[dst] += 1;
                }
                Ok(())
            };
            if let Err(e) = serialize() {
                deferred = Some(e);
                batch = SerializedBatch::empty(p);
            } else {
                comm.charge(Work::SerializeGeoms {
                    n: batch.records.iter().sum(),
                    bytes: batch.bufs.iter().map(|b| b.len() as u64).sum(),
                });
            }
        }

        // The window's staged protocol + receive side (run_batch_sink
        // itself winds its rounds down on error, so its collectives are
        // always matched).
        let failed = deferred.is_some();
        let result = match sink {
            WindowSink::Records(sink) => {
                plan.run_batch_rounds(comm, batch, &mut |round, per_src| {
                    if failed {
                        return Ok(()); // discard receives after a failure
                    }
                    sink(window, round, per_src)
                })
            }
            WindowSink::Frames(sink) => {
                plan.run_batch_rounds_frames(comm, batch, &mut |_, round, bufs| {
                    if failed {
                        return Ok(()); // discard receives after a failure
                    }
                    sink(window, round, bufs)
                })
            }
        };
        match result {
            Ok(w) => stats.absorb(w),
            Err(e) => deferred = deferred.or(Some(e)),
        }
    }
    if let Some(e) = deferred {
        return Err(e);
    }

    Ok(stats)
}

/// Per-destination payloads that were already serialized upstream — the
/// streamed batches the ingest pipeline's worker threads produce
/// ([`crate::pipeline::partition_chunked`]). One buffer and one record
/// count per destination rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SerializedBatch {
    /// Wire-format bytes destined for each rank (`bufs.len() == world size`).
    pub bufs: Vec<Vec<u8>>,
    /// Records contained in each destination buffer.
    pub records: Vec<u64>,
}

impl SerializedBatch {
    /// An empty batch for a `p`-rank world.
    pub fn empty(p: usize) -> Self {
        SerializedBatch {
            bufs: vec![Vec::new(); p],
            records: vec![0; p],
        }
    }

    /// Checks that the batch matches a `p`-rank communicator: exactly one
    /// buffer and one record count per destination.
    fn validate(&self, p: usize) -> Result<()> {
        if self.bufs.len() != p || self.records.len() != p {
            return Err(CoreError::BatchShape {
                comm_size: p,
                bufs: self.bufs.len(),
                records: self.records.len(),
            });
        }
        Ok(())
    }
}

/// One staged round supplied to [`ExchangePlan::run_streamed`] by an
/// upstream producer.
#[derive(Debug)]
pub struct ExchangeRound {
    /// Per-destination payloads of this round (`bufs.len()` = world size).
    pub batch: SerializedBatch,
    /// Per-lane virtual seconds of the upstream compute that produced
    /// this round; the plan folds them in *overlapped* with the previous
    /// round's in-flight `ialltoallv` (slowest-lane rule, as
    /// [`Comm::advance_parallel`]).
    pub lanes: Vec<f64>,
    /// Whether the producer will supply another round after this one.
    pub more: bool,
}

/// The staged, chunked, overlapped all-to-all exchange.
///
/// Built from an [`ExchangeOptions`]; executed either over a fully
/// serialized [`SerializedBatch`] ([`ExchangePlan::run_batch`] /
/// [`ExchangePlan::run_batch_rounds`], which split each destination's
/// payload into record-aligned chunks) or over a lazy round producer
/// ([`ExchangePlan::run_streamed`], used by the ingest pipeline to
/// serialize round `r+1` while round `r` is in flight).
///
/// Round protocol: `ialltoall_u64` of this round's byte counts (with a
/// continuation flag in the high bit) → `ialltoallv` of the payloads →
/// while that transfer is in flight, produce the next round and
/// deserialize/drain the previous one → `wait`. Termination is agreed
/// collectively through the flags, so ranks may contribute different
/// round counts (drained ranks post empty rounds).
#[derive(Debug, Clone, Copy)]
pub struct ExchangePlan {
    p: usize,
    chunk: Option<u64>,
}

impl ExchangePlan {
    /// Plans an exchange over `comm` with `opts`'s chunk policy.
    pub fn new(comm: &Comm, opts: &ExchangeOptions) -> Self {
        ExchangePlan {
            p: comm.size(),
            chunk: opts.chunk.resolve(),
        }
    }

    /// The resolved per-destination round cap (`None` = single round).
    pub fn chunk_bytes(&self) -> Option<u64> {
        self.chunk
    }

    /// Ships a pre-serialized batch and collects the received pairs in
    /// source-rank order — bit-identical to the single-round blocking
    /// protocol for **any** chunk policy.
    /// Collective: every rank must call it with its own batch.
    pub fn run_batch(
        &self,
        comm: &mut Comm,
        batch: SerializedBatch,
    ) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
        let mut collector = PerSourceCollector::new(self.p);
        let stats = self.run_batch_rounds(comm, batch, &mut |_, round| {
            collector.collect(round);
            Ok(())
        })?;
        let mut received = Vec::new();
        collector.drain_into(&mut received);
        Ok((received, stats))
    }

    /// Ships a pre-serialized batch, handing each completed round's
    /// received records (indexed by source rank) to `sink` while later
    /// rounds are still in flight.
    /// Collective: every rank must call it with its own batch.
    pub fn run_batch_rounds(
        &self,
        comm: &mut Comm,
        batch: SerializedBatch,
        sink: &mut dyn FnMut(usize, Vec<Vec<(u32, Feature)>>) -> Result<()>,
    ) -> Result<ExchangeStats> {
        self.run_batch_rounds_ctx(comm, batch, &mut |_, idx, per_src| sink(idx, per_src))
    }

    /// [`ExchangePlan::run_batch_rounds`] with communicator access in the
    /// sink: each completed round arrives together with `&mut Comm`, so
    /// the sink can charge its own virtual compute — overlapped with the
    /// rounds still in flight — or serialize follow-up records. The
    /// serving layer uses this to walk local R-trees while queries are
    /// still being shipped.
    /// Collective: every rank must call it with its own batch.
    pub fn run_batch_rounds_ctx(
        &self,
        comm: &mut Comm,
        batch: SerializedBatch,
        sink: &mut dyn FnMut(&mut Comm, usize, Vec<Vec<(u32, Feature)>>) -> Result<()>,
    ) -> Result<ExchangeStats> {
        self.run_batch_sink(comm, batch, &mut RoundSink::Records(sink))
    }

    /// The zero-copy variant of [`ExchangePlan::run_batch_rounds_ctx`]:
    /// each completed round's received buffers arrive **validated but not
    /// deserialized**, indexed by source rank — walk them with
    /// [`record_frames`] or fold them into a [`FrameStore`]. The receive
    /// side charges only the validation scan ([`Work::CopyBytes`]), not
    /// the per-record materialization the owned path pays. Same protocol,
    /// same rounds, same collective labels as the owned variant.
    /// Collective: every rank must call it with its own batch.
    pub fn run_batch_rounds_frames(
        &self,
        comm: &mut Comm,
        batch: SerializedBatch,
        sink: &mut dyn FnMut(&mut Comm, usize, Vec<Vec<u8>>) -> Result<()>,
    ) -> Result<ExchangeStats> {
        self.run_batch_sink(comm, batch, &mut RoundSink::Frames(sink))
    }

    /// Shared body of the two `run_batch_rounds_*` flavors.
    fn run_batch_sink(
        &self,
        comm: &mut Comm,
        batch: SerializedBatch,
        sink: &mut RoundSink<'_>,
    ) -> Result<ExchangeStats> {
        if let Err(e) = batch.validate(self.p) {
            // Still participate (one empty round) so a rank with a
            // malformed batch cannot strand its peers mid-collective,
            // then report the typed error.
            self.run_streamed_sink(comm, &mut |_| Ok(None), sink)?;
            return Err(e);
        }
        match self.chunk {
            None => {
                // Degenerate single round: the blocking protocol.
                let mut whole = Some(batch);
                self.run_streamed_sink(
                    comm,
                    &mut |_| {
                        Ok(whole.take().map(|batch| ExchangeRound {
                            batch,
                            lanes: Vec::new(),
                            more: false,
                        }))
                    },
                    sink,
                )
            }
            Some(cap) => {
                let mut splitter = BatchSplitter::new(batch, cap);
                self.run_streamed_sink(comm, &mut |_| splitter.next_round(), sink)
            }
        }
    }

    /// Runs the full pipelined protocol over a lazy producer.
    ///
    /// Round sequencing keeps the paper's sizes-before-payload dependency
    /// (real `MPI_Alltoallv` needs the receive counts first) while taking
    /// everything off the critical path that can come off it: round
    /// `r+1`'s production (`feed`) and its size exchange are posted while
    /// round `r`'s payload is in flight, and round `r-1`'s drain
    /// (deserialize + `sink`) runs before either wait completes. `feed`
    /// reports its compute through [`ExchangeRound::lanes`], which the
    /// plan folds in overlapped; returning `None` (or a round with
    /// `more = false`) ends this rank's contribution, and the plan keeps
    /// posting empty rounds until the continuation flags say every rank
    /// is done. `sink` receives each round's deserialized records indexed
    /// by source rank. Collective: every rank must call it.
    ///
    /// A per-rank error (from `feed`, `sink`, or a corrupt payload) does
    /// **not** abandon the protocol mid-flight — that would strand the
    /// peer ranks at their next collective. The failing rank keeps
    /// participating with empty rounds (draining and discarding its
    /// receives) until the flags terminate the exchange globally, then
    /// returns the original error.
    pub fn run_streamed(
        &self,
        comm: &mut Comm,
        feed: &mut dyn FnMut(&mut Comm) -> Result<Option<ExchangeRound>>,
        sink: &mut dyn FnMut(usize, Vec<Vec<(u32, Feature)>>) -> Result<()>,
    ) -> Result<ExchangeStats> {
        self.run_streamed_ctx(comm, feed, &mut |_, idx, per_src| sink(idx, per_src))
    }

    /// [`ExchangePlan::run_streamed`] with communicator access in the
    /// sink (see [`ExchangePlan::run_batch_rounds_ctx`]). Sink compute
    /// charged through the passed `&mut Comm` overlaps any round still in
    /// flight exactly like deserialization does.
    /// Collective: every rank must call it (the full contract is on
    /// [`ExchangePlan::run_streamed`]).
    pub fn run_streamed_ctx(
        &self,
        comm: &mut Comm,
        feed: &mut dyn FnMut(&mut Comm) -> Result<Option<ExchangeRound>>,
        sink: &mut dyn FnMut(&mut Comm, usize, Vec<Vec<(u32, Feature)>>) -> Result<()>,
    ) -> Result<ExchangeStats> {
        self.run_streamed_sink(comm, feed, &mut RoundSink::Records(sink))
    }

    /// Shared protocol loop behind the owned and frames sink flavors.
    fn run_streamed_sink(
        &self,
        comm: &mut Comm,
        feed: &mut dyn FnMut(&mut Comm) -> Result<Option<ExchangeRound>>,
        sink: &mut RoundSink<'_>,
    ) -> Result<ExchangeStats> {
        let p = self.p;
        assert_eq!(comm.size(), p, "plan built for a different world size");
        let mut stats = ExchangeStats {
            phases: 1,
            ..Default::default()
        };
        let mut engine = ProgressEngine::new(1);
        let mut local_done = false;
        // First per-rank error; once set, the rank winds the protocol
        // down with empty rounds instead of computing further.
        let mut deferred: Option<CoreError> = None;

        // Round 0 prologue: produce, then the strict blocking two-round
        // sequencing (sizes exchanged and completed before the payload is
        // posted) — with one round this is exactly the historic protocol.
        let (mut batch, more) =
            produce_round(comm, &mut engine, feed, &mut local_done, p, &mut deferred);
        let sreq = comm.labeled("exchange.sizes[round=0]", |c| {
            c.ialltoall_u64(flagged_sizes(&batch, more))
        });
        let incoming = engine.drive(comm, sreq);
        let mut any_more = incoming.iter().any(|&v| v & MORE_BIT != 0);
        let mut expected_sizes: Vec<u64> = incoming.iter().map(|v| v & !MORE_BIT).collect();

        let mut pending: Option<(usize, mvio_msim::Request<Vec<Vec<u8>>>, Vec<u64>)> = None;
        let mut round = 0usize;
        loop {
            stats.per_round.push(RoundStats {
                records_sent: batch.records.iter().sum(),
                bytes_sent: batch.bufs.iter().map(|b| b.len() as u64).sum(),
                ..Default::default()
            });
            stats.records_sent += stats.per_round[round].records_sent;
            stats.bytes_sent += stats.per_round[round].bytes_sent;
            stats.rounds += 1;
            // The round index is collective-synchronized (driven by the
            // flags of the previous size exchange), so these labels match
            // across ranks — and make a divergent round count show up in
            // the verifier as a label mismatch, not a silent hang.
            let preq = comm.labeled(&format!("exchange.payload[round={round}]"), |c| {
                c.ialltoallv(std::mem::take(&mut batch).bufs)
            });

            // Pipeline ahead: produce round r+1 and post its size
            // exchange while round r's payload is in flight.
            let sreq_next = if any_more {
                let (next, nmore) =
                    produce_round(comm, &mut engine, feed, &mut local_done, p, &mut deferred);
                let req = comm.labeled(&format!("exchange.sizes[round={}]", round + 1), |c| {
                    c.ialltoall_u64(flagged_sizes(&next, nmore))
                });
                batch = next;
                Some(req)
            } else {
                None
            };

            // Drain round r-1 while round r (and r+1's sizes) fly.
            if let Some((idx, req, expected)) = pending.take() {
                self.drain_round(
                    comm,
                    &mut engine,
                    idx,
                    req,
                    &expected,
                    &mut stats,
                    sink,
                    &mut deferred,
                );
            }

            match sreq_next {
                Some(req) => {
                    let incoming = engine.drive(comm, req);
                    any_more = incoming.iter().any(|&v| v & MORE_BIT != 0);
                    let next_sizes = incoming.iter().map(|v| v & !MORE_BIT).collect();
                    pending = Some((
                        round,
                        preq,
                        std::mem::replace(&mut expected_sizes, next_sizes),
                    ));
                    round += 1;
                }
                None => {
                    self.drain_round(
                        comm,
                        &mut engine,
                        round,
                        preq,
                        &expected_sizes,
                        &mut stats,
                        sink,
                        &mut deferred,
                    );
                    break;
                }
            }
        }
        if let Some(err) = deferred {
            return Err(err);
        }
        stats.overlapped_compute_s = engine.overlapped_compute();
        stats.exposed_wait_s = engine.exposed_wait();
        Ok(stats)
    }

    /// Completes one round's payload request, checks/deserializes per
    /// source (charged to the clock — overlapped with any round still in
    /// flight), updates counters and hands the round to the sink.
    /// `expected_sizes` are the byte counts the size exchange advertised
    /// for this round — the receive-side cross-check of the two-round
    /// protocol. Errors (corrupt payload, sink failure) are parked in
    /// `deferred` rather than returned, so the caller's protocol loop
    /// keeps the collectives matched across ranks; once `deferred` is
    /// set, later rounds are received and discarded.
    ///
    /// The two sink flavors are the owned/zero-copy fork of the read
    /// path: a [`RoundSink::Records`] consumer pays the per-record
    /// materialization ([`Work::SerializeGeoms`] — one fixed cost per
    /// record plus the byte copy), a [`RoundSink::Frames`] consumer only
    /// pays the validation scan over the received bytes
    /// ([`Work::CopyBytes`]) and borrows the frames in place.
    #[allow(clippy::too_many_arguments)]
    fn drain_round(
        &self,
        comm: &mut Comm,
        engine: &mut ProgressEngine,
        idx: usize,
        req: mvio_msim::Request<Vec<Vec<u8>>>,
        expected_sizes: &[u64],
        stats: &mut ExchangeStats,
        sink: &mut RoundSink<'_>,
        deferred: &mut Option<CoreError>,
    ) {
        let bufs = engine.drive(comm, req);
        if deferred.is_some() {
            return; // already failed: receive and discard
        }
        let run = |sink: &mut RoundSink<'_>| -> Result<()> {
            match sink {
                RoundSink::Records(sink) => {
                    let mut per_src = Vec::with_capacity(bufs.len());
                    let (mut records, mut bytes) = (0u64, 0u64);
                    for (src, buf) in bufs.into_iter().enumerate() {
                        debug_assert_eq!(
                            buf.len() as u64,
                            expected_sizes[src],
                            "payload from rank {src} disagrees with its advertised size"
                        );
                        let recs = deserialize_records(&buf)?;
                        records += recs.len() as u64;
                        bytes += buf.len() as u64;
                        per_src.push(recs);
                    }
                    comm.charge(Work::SerializeGeoms { n: records, bytes });
                    update_received(stats, idx, records, bytes);
                    sink(comm, idx, per_src)
                }
                RoundSink::Frames(sink) => {
                    let (mut records, mut bytes) = (0u64, 0u64);
                    for (src, buf) in bufs.iter().enumerate() {
                        debug_assert_eq!(
                            buf.len() as u64,
                            expected_sizes[src],
                            "payload from rank {src} disagrees with its advertised size"
                        );
                        records += validate_frames(buf)?;
                        bytes += buf.len() as u64;
                    }
                    comm.charge(Work::CopyBytes { n: bytes });
                    update_received(stats, idx, records, bytes);
                    sink(comm, idx, bufs)
                }
            }
        };
        if let Err(e) = run(sink) {
            *deferred = Some(e);
        }
    }
}

/// The two receive-side consumers of a completed round: deserialized
/// per-source records (the owned path) or raw validated wire buffers (the
/// zero-copy path).
enum RoundSink<'s> {
    /// Owned materialization per record.
    Records(&'s mut dyn FnMut(&mut Comm, usize, Vec<Vec<(u32, Feature)>>) -> Result<()>),
    /// Validated raw buffers, borrowed in place by the consumer.
    Frames(&'s mut dyn FnMut(&mut Comm, usize, Vec<Vec<u8>>) -> Result<()>),
}

/// Folds one round's received counters into the exchange stats.
fn update_received(stats: &mut ExchangeStats, idx: usize, records: u64, bytes: u64) {
    stats.records_received += records;
    stats.bytes_received += bytes;
    let slot = &mut stats.per_round[idx];
    slot.records_received = records;
    slot.bytes_received = bytes;
}

/// Pulls one round from the feed (empty once this rank is drained or has
/// failed), folding its reported per-lane compute into the clock —
/// overlapped with whatever requests are currently in flight. A feed
/// error is parked in `deferred` and the rank continues with an empty
/// final round, keeping the collective protocol matched across ranks.
fn produce_round(
    comm: &mut Comm,
    engine: &mut ProgressEngine,
    feed: &mut dyn FnMut(&mut Comm) -> Result<Option<ExchangeRound>>,
    local_done: &mut bool,
    p: usize,
    deferred: &mut Option<CoreError>,
) -> (SerializedBatch, bool) {
    let produced = if *local_done || deferred.is_some() {
        None
    } else {
        match feed(comm) {
            Ok(r) => r,
            Err(e) => {
                *deferred = Some(e);
                None
            }
        }
    };
    let (batch, lanes, more) = match produced {
        Some(r) => {
            debug_assert_eq!(r.batch.bufs.len(), p, "round batch shape");
            (r.batch, r.lanes, r.more)
        }
        None => (SerializedBatch::empty(p), Vec::new(), false),
    };
    *local_done = !more;
    for (lane, secs) in lanes.iter().enumerate() {
        engine.charge(lane, *secs);
    }
    engine.flush(comm);
    (batch, more)
}

/// Size-exchange values for one round: byte counts with the continuation
/// flag in the high bit.
fn flagged_sizes(batch: &SerializedBatch, more: bool) -> Vec<u64> {
    let flag = if more { MORE_BIT } else { 0 };
    batch
        .bufs
        .iter()
        .map(|b| {
            debug_assert!((b.len() as u64) < MORE_BIT);
            b.len() as u64 | flag
        })
        .collect()
}

/// Cuts a fully serialized batch into record-aligned per-destination
/// pieces of at most `cap` bytes (a single oversized record still ships
/// whole). Destinations drain independently; the feed ends when every
/// destination is exhausted.
struct BatchSplitter {
    batch: SerializedBatch,
    offsets: Vec<usize>,
    cap: u64,
}

impl BatchSplitter {
    fn new(batch: SerializedBatch, cap: u64) -> Self {
        let p = batch.bufs.len();
        BatchSplitter {
            batch,
            offsets: vec![0; p],
            cap,
        }
    }

    fn next_round(&mut self) -> Result<Option<ExchangeRound>> {
        let p = self.batch.bufs.len();
        let mut piece = SerializedBatch::empty(p);
        let mut any = false;
        for d in 0..p {
            let buf = &self.batch.bufs[d];
            let mut pos = self.offsets[d];
            if pos >= buf.len() {
                continue;
            }
            any = true;
            let start = pos;
            let mut records = 0u64;
            while pos < buf.len() {
                let len = record_len_at(buf, pos)?;
                if records > 0 && (pos - start + len) as u64 > self.cap {
                    break;
                }
                pos += len;
                records += 1;
            }
            piece.bufs[d] = buf[start..pos].to_vec();
            piece.records[d] = records;
            self.offsets[d] = pos;
        }
        if !any {
            return Ok(None);
        }
        let more = self
            .offsets
            .iter()
            .zip(&self.batch.bufs)
            .any(|(&off, buf)| off < buf.len());
        Ok(Some(ExchangeRound {
            batch: piece,
            lanes: Vec::new(),
            more,
        }))
    }
}

/// Single-window exchange of pre-serialized per-destination buffers: the
/// staged `Alltoall` + `Alltoallv` protocol of [`exchange_features`]
/// without the serialization pass, which the caller (the ingest pipeline)
/// already performed — and already charged to the clock — on its worker
/// threads. Only the receive-side deserialization is charged here. The
/// chunk policy resolves through [`CHUNK_ENV`]; use
/// [`exchange_serialized_with`] to pin it explicitly.
/// Collective: every rank must call it with its own batch.
pub fn exchange_serialized(
    comm: &mut Comm,
    batch: SerializedBatch,
) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
    exchange_serialized_with(comm, batch, &ExchangeOptions::default())
}

/// [`exchange_serialized`] with an explicit chunk policy.
/// Collective: every rank must call it with its own batch.
pub fn exchange_serialized_with(
    comm: &mut Comm,
    batch: SerializedBatch,
    opts: &ExchangeOptions,
) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
    ExchangePlan::new(comm, opts).run_batch(comm, batch)
}

/// The zero-copy counterpart of [`exchange_serialized_with`]: same staged
/// protocol, same rounds and collective labels, but the received payloads
/// stay as validated wire buffers in a [`FrameStore`] instead of being
/// materialized into owned [`Feature`]s. The receive side charges only
/// the validation scan ([`Work::CopyBytes`]); record order under
/// [`FrameStore::frames`] is bit-identical to the owned path's output for
/// every chunk policy.
/// Collective: every rank must call it with its own batch.
pub fn exchange_serialized_frames_with(
    comm: &mut Comm,
    batch: SerializedBatch,
    opts: &ExchangeOptions,
) -> Result<(FrameStore, ExchangeStats)> {
    let p = comm.size();
    let mut store = FrameStore::new(p);
    let stats =
        ExchangePlan::new(comm, opts).run_batch_rounds_frames(comm, batch, &mut |_, _, bufs| {
            let records = bufs
                .iter()
                .try_fold(0u64, |n, b| Ok::<u64, CoreError>(n + count_frames(b)?))?;
            store.collect(bufs, records);
            Ok(())
        })?;
    Ok((store, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::grid::{CellMap, GridSpec, UniformGrid};
    use mvio_geom::{wkt, Point, Rect};
    use mvio_msim::{Topology, World, WorldConfig};

    fn feature(x: f64, y: f64, ud: &str) -> Feature {
        Feature::with_userdata(mvio_geom::Geometry::Point(Point::new(x, y)), ud)
    }

    /// A `cells × 1` uniform decomposition over a unit-height strip, so
    /// cell ids match the old map-only tests one-to-one.
    fn strip(cells: u32, map: CellMap, ranks: usize) -> UniformDecomposition {
        let grid = UniformGrid::new(
            Rect::new(0.0, 0.0, cells as f64, 1.0),
            GridSpec {
                cells_x: cells,
                cells_y: 1,
            },
        );
        UniformDecomposition::new(grid, map, ranks)
    }

    /// Corrupt frames must surface as typed [`CoreError::Frame`] errors
    /// from the checked decode path — never as a silently truncated
    /// narrowing cast or an out-of-bounds panic.
    #[test]
    fn malformed_frames_are_rejected_with_typed_errors() {
        let mut valid = Vec::new();
        serialize_record(7, &feature(1.0, 2.0, "ud"), &mut Vec::new(), &mut valid).unwrap();

        // Cell word with a corrupted high half: before the checked
        // conversion this truncated back to a plausible cell id.
        let mut high_cell = valid.clone();
        high_cell[4..8].copy_from_slice(&0xdead_beef_u32.to_le_bytes());
        match deserialize_records(&high_cell) {
            Err(CoreError::Frame(m)) => assert!(m.contains("cell-id space"), "{m}"),
            other => panic!("high cell word not rejected: {other:?}"),
        }

        // Geometry length field pointing far past the end of the buffer.
        let mut huge_glen = valid.clone();
        huge_glen[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        match deserialize_records(&huge_glen) {
            Err(CoreError::Frame(m)) => assert!(m.contains("truncated geometry"), "{m}"),
            other => panic!("oversized geometry length not rejected: {other:?}"),
        }
        match record_len_at(&huge_glen, 0) {
            Err(CoreError::Frame(m)) => assert!(m.contains("truncated geometry"), "{m}"),
            other => panic!("record_len_at accepted oversized length: {other:?}"),
        }

        // Frames cut off mid-header and mid-userdata.
        for cut in [5, valid.len() - 1] {
            assert!(
                matches!(deserialize_records(&valid[..cut]), Err(CoreError::Frame(_))),
                "truncation at {cut} not rejected"
            );
            assert!(
                matches!(record_len_at(&valid[..cut], 0), Err(CoreError::Frame(_))),
                "record_len_at accepted truncation at {cut}"
            );
        }

        // The intact frame still decodes.
        let out = deserialize_records(&valid).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 7);
    }

    #[test]
    fn record_round_trip() {
        let f = Feature::with_userdata(
            wkt::parse("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap(),
            "name=park",
        );
        let mut buf = Vec::new();
        serialize_record(42, &f, &mut Vec::new(), &mut buf).unwrap();
        let out = deserialize_records(&buf).unwrap();
        assert_eq!(out, vec![(42, f)]);
    }

    #[test]
    fn deserialize_rejects_truncation() {
        let f = feature(1.0, 2.0, "x");
        let mut buf = Vec::new();
        serialize_record(1, &f, &mut Vec::new(), &mut buf).unwrap();
        for cut in [1, 8, 13, buf.len() - 1] {
            assert!(deserialize_records(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn record_len_walks_the_wire_format() {
        let mut buf = Vec::new();
        let mut lens = Vec::new();
        for i in 0..5 {
            let before = buf.len();
            let f = feature(i as f64, 0.0, &"u".repeat(i));
            serialize_record(i as u32, &f, &mut Vec::new(), &mut buf).unwrap();
            lens.push(buf.len() - before);
        }
        let mut pos = 0;
        for expect in lens {
            assert_eq!(record_len_at(&buf, pos).unwrap(), expect);
            pos += expect;
        }
        assert_eq!(pos, buf.len());
        assert!(record_len_at(&buf, buf.len() - 3).is_err());
    }

    #[test]
    fn exchange_routes_pairs_to_cell_owners() {
        let num_cells = 8;
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            // Every rank produces one pair for every cell.
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| {
                    (
                        c,
                        feature(c as f64, comm.rank() as f64, &format!("r{}", comm.rank())),
                    )
                })
                .collect();
            let (mine, stats) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            (mine, stats)
        });
        for (rank, (mine, stats)) in out.iter().enumerate() {
            // Round-robin: rank owns cells c with c % 4 == rank; 2 cells
            // each, with contributions from all 4 ranks.
            assert_eq!(mine.len(), 2 * 4, "rank {rank}");
            assert!(mine.iter().all(|(c, _)| (*c as usize) % 4 == rank));
            assert_eq!(stats.records_sent, 8);
            assert_eq!(stats.records_received, 8);
            assert!(stats.bytes_sent > 0);
            assert_eq!(stats.per_round.len(), stats.rounds as usize);
            let sent: u64 = stats.per_round.iter().map(|r| r.records_sent).sum();
            assert_eq!(sent, stats.records_sent);
        }
    }

    /// The tentpole oracle at unit scale: for any chunk size the chunked
    /// plan returns exactly the blocking result — same pairs, same order.
    #[test]
    fn chunked_exchange_is_bit_identical_to_blocking() {
        let num_cells = 10;
        let run = |chunk: ExchangeChunk| {
            World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
                let pairs: Vec<(u32, Feature)> = (0..num_cells)
                    .map(|c| {
                        (
                            c,
                            feature(
                                c as f64,
                                comm.rank() as f64,
                                &format!("rank{}cell{c}payload-padding", comm.rank()),
                            ),
                        )
                    })
                    .collect();
                let opts = ExchangeOptions::with_chunk(chunk);
                exchange_features(comm, pairs, &decomp, &opts).unwrap()
            })
        };
        let blocking = run(ExchangeChunk::Unlimited);
        for chunk in [1u64, 40, 100, 1 << 20] {
            let chunked = run(ExchangeChunk::Bytes(chunk));
            for rank in 0..3 {
                assert_eq!(
                    chunked[rank].0, blocking[rank].0,
                    "chunk={chunk} rank={rank}"
                );
            }
            // Tiny chunks must actually produce multiple rounds.
            if chunk == 1 {
                assert!(chunked[0].1.rounds > 1, "1-byte cap must multi-round");
            }
            // Conservation holds per chunking too.
            let sent: u64 = chunked.iter().map(|(_, s)| s.records_sent).sum();
            let recv: u64 = chunked.iter().map(|(_, s)| s.records_received).sum();
            assert_eq!(sent, recv);
        }
        assert_eq!(blocking[0].1.rounds, 1);
    }

    /// With the unlimited chunk the plan must not change the virtual
    /// clock relative to the historic blocking protocol (which is now
    /// implemented *as* the degenerate plan — this pins the equivalence).
    #[test]
    fn degenerate_plan_has_one_round_and_single_sizes_exchange() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let decomp = strip(4, CellMap::RoundRobin, comm.size());
            let pairs: Vec<(u32, Feature)> =
                (0..4).map(|c| (c, feature(c as f64, 0.0, "x"))).collect();
            let opts = ExchangeOptions::with_chunk(ExchangeChunk::Unlimited);
            let (_, stats) = exchange_features(comm, pairs, &decomp, &opts).unwrap();
            (stats.rounds, stats.per_round.len(), comm.now())
        });
        assert_eq!(out[0].0, 1);
        assert_eq!(out[0].1, 1);
        assert!(out[0].2 > 0.0);
    }

    #[test]
    fn ranks_with_unequal_round_counts_terminate_together() {
        // Rank 0 sends a lot (many rounds), rank 1 sends nothing: the
        // continuation flags must keep rank 1 participating.
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let decomp = strip(6, CellMap::Block, comm.size());
            let pairs: Vec<(u32, Feature)> = if comm.rank() == 0 {
                (0..6)
                    .flat_map(|c| {
                        (0..4).map(move |i| (c, feature(c as f64, i as f64, "data-0123456789")))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let opts = ExchangeOptions::with_chunk(ExchangeChunk::Bytes(64));
            let (mine, stats) = exchange_features(comm, pairs, &decomp, &opts).unwrap();
            (mine.len(), stats.rounds)
        });
        // 24 pairs, block map: cells 0..3 -> rank 0, 3..6 -> rank 1.
        assert_eq!(out[0].0 + out[1].0, 24);
        // Both ranks executed the same number of rounds.
        assert_eq!(out[0].1, out[1].1);
        assert!(out[0].1 > 1, "64-byte cap must take multiple rounds");
    }

    #[test]
    fn batch_shape_mismatch_is_a_typed_error() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            // Batch sized for a 3-rank world on a 2-rank communicator.
            let bad = SerializedBatch::empty(3);
            match exchange_serialized(comm, bad) {
                Err(CoreError::BatchShape {
                    comm_size, bufs, ..
                }) => (comm_size, bufs),
                other => panic!("expected BatchShape error, got {other:?}"),
            }
        });
        assert_eq!(out, vec![(2, 3), (2, 3)]);
        // Mismatched records length alone is also caught.
        let out = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let bad = SerializedBatch {
                bufs: vec![Vec::new()],
                records: vec![0, 0],
            };
            matches!(
                exchange_serialized(comm, bad),
                Err(CoreError::BatchShape { .. })
            )
        });
        assert!(out[0]);
    }

    /// A per-rank failure mid-plan must propagate as a typed error on
    /// the failing rank while every other rank completes normally — not
    /// strand the peers at their next collective (which would hang the
    /// world).
    #[test]
    fn per_rank_feed_error_does_not_strand_peers() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let plan =
                ExchangePlan::new(comm, &ExchangeOptions::with_chunk(ExchangeChunk::Bytes(32)));
            if comm.rank() == 0 {
                // Rank 0's producer fails on its second round while rank 1
                // still has rounds to send.
                let mut calls = 0;
                let mut feed = |_: &mut Comm| {
                    calls += 1;
                    if calls == 1 {
                        let mut batch = SerializedBatch::empty(2);
                        serialize_record(
                            0,
                            &feature(0.0, 0.0, "a"),
                            &mut Vec::new(),
                            &mut batch.bufs[0],
                        )
                        .unwrap();
                        batch.records[0] = 1;
                        Ok(Some(ExchangeRound {
                            batch,
                            lanes: vec![],
                            more: true,
                        }))
                    } else {
                        Err(CoreError::Partition("injected feed failure".into()))
                    }
                };
                let res = plan.run_streamed(comm, &mut feed, &mut |_, _| Ok(()));
                matches!(res, Err(CoreError::Partition(m)) if m.contains("injected")) as usize
            } else {
                // Rank 1 sends three full rounds; it must complete cleanly.
                let mut pairs = Vec::new();
                for i in 0..6 {
                    pairs.push((i % 2, feature(i as f64, 0.0, "0123456789abcdef")));
                }
                let decomp = strip(2, CellMap::RoundRobin, comm.size());
                let (mine, stats) = exchange_features(
                    comm,
                    pairs,
                    &decomp,
                    &ExchangeOptions::with_chunk(ExchangeChunk::Bytes(32)),
                )
                .unwrap();
                assert!(stats.rounds > 1);
                mine.len()
            }
        });
        assert_eq!(out[0], 1, "rank 0 must surface the injected error");
        assert!(out[1] >= 3, "rank 1 must receive its own cell-1 pairs");
    }

    /// A corrupt pre-serialized buffer on one rank errors there and
    /// completes everywhere else.
    #[test]
    fn corrupt_batch_errors_without_hanging_the_world() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let mut batch = SerializedBatch::empty(2);
            if comm.rank() == 0 {
                batch.bufs[1] = vec![0xFF; 7]; // truncated garbage
                batch.records[1] = 1;
            } else {
                serialize_record(
                    1,
                    &feature(1.0, 1.0, "fine"),
                    &mut Vec::new(),
                    &mut batch.bufs[1],
                )
                .unwrap();
                batch.records[1] = 1;
            }
            let opts = ExchangeOptions::with_chunk(ExchangeChunk::Bytes(16));
            exchange_serialized_with(comm, batch, &opts).is_err()
        });
        // Rank 0's splitter rejects the corrupt buffer; rank 1 receives
        // only well-formed data and succeeds.
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn chunk_env_resolution() {
        // Explicit policies never consult the environment.
        assert_eq!(ExchangeChunk::Unlimited.resolve(), None);
        assert_eq!(ExchangeChunk::Bytes(4096).resolve(), Some(4096));
        assert_eq!(ExchangeChunk::Bytes(0).resolve(), Some(1), "clamped");
    }

    #[test]
    fn sliding_window_preserves_results() {
        let num_cells = 16;
        let single = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let (mut mine, stats) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            mine.sort_by_key(|(c, _)| *c);
            (mine, stats.phases)
        });
        let windowed = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let opts = ExchangeOptions {
                windows: 4,
                ..Default::default()
            };
            let (mut mine, stats) = exchange_features(comm, pairs, &decomp, &opts).unwrap();
            mine.sort_by_key(|(c, _)| *c);
            (mine, stats.phases)
        });
        for rank in 0..4 {
            assert_eq!(single[rank].0, windowed[rank].0, "rank {rank}");
        }
        assert_eq!(single[0].1, 1);
        assert_eq!(windowed[0].1, 4);
    }

    /// Pins the exact output ordering of the historic protocol: windows
    /// in order, and source-rank order within each window — for the
    /// blocking and the chunked plan alike. (The sorted comparisons in
    /// the other window tests would not notice a reordering.)
    #[test]
    fn windowed_output_order_is_window_major_then_source_major() {
        for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(32)] {
            let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                let decomp = strip(4, CellMap::RoundRobin, comm.size());
                // Every rank sends one pair per cell, tagged with origin.
                let pairs: Vec<(u32, Feature)> = (0..4)
                    .map(|c| (c, feature(c as f64, 0.0, &format!("r{}", comm.rank()))))
                    .collect();
                let opts = ExchangeOptions { windows: 2, chunk };
                let (mine, _) = exchange_features(comm, pairs, &decomp, &opts).unwrap();
                mine.iter()
                    .map(|(c, f)| format!("{c}:{}", f.userdata))
                    .collect::<Vec<_>>()
            });
            // Rank 0 owns cells 0 and 2; window 0 covers cells 0..2,
            // window 1 covers 2..4. Within each window: src 0 then src 1.
            assert_eq!(out[0], vec!["0:r0", "0:r1", "2:r0", "2:r1"], "{chunk:?}");
            assert_eq!(out[1], vec!["1:r0", "1:r1", "3:r0", "3:r1"], "{chunk:?}");
        }
    }

    #[test]
    fn empty_exchange_is_fine() {
        let out = World::run(WorldConfig::new(Topology::single_node(3)), |comm| {
            let decomp = strip(8, CellMap::RoundRobin, comm.size());
            let (mine, stats) =
                exchange_features(comm, vec![], &decomp, &ExchangeOptions::default()).unwrap();
            (mine.len(), stats.bytes_sent)
        });
        assert!(out.iter().all(|&(n, b)| n == 0 && b == 0));
    }

    #[test]
    fn block_map_exchange() {
        let num_cells = 12;
        let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            let decomp = strip(num_cells, CellMap::Block, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let (mine, _) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            let mut cells: Vec<u32> = mine.iter().map(|(c, _)| *c).collect();
            cells.sort_unstable();
            cells.dedup();
            cells
        });
        // Block map: rank 0 owns 0..4, rank 1 owns 4..8, rank 2 owns 8..12.
        assert_eq!(out[0], vec![0, 1, 2, 3]);
        assert_eq!(out[1], vec![4, 5, 6, 7]);
        assert_eq!(out[2], vec![8, 9, 10, 11]);
    }

    /// The batched variant must hand back one batch per window whose
    /// concatenation equals [`exchange_features`]'s vector exactly — for
    /// blocking and chunked policies alike (the chunked rounds are
    /// reassembled in source order before the batch is emitted).
    #[test]
    fn window_batches_concatenate_to_the_flat_exchange() {
        let num_cells = 6;
        for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(48)] {
            for windows in [1u32, 3] {
                let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                    let mk_pairs = |rank: usize| -> Vec<(u32, Feature)> {
                        (0..num_cells)
                            .map(|c| (c, feature(c as f64, rank as f64, "0123456789abcdef")))
                            .collect()
                    };
                    let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
                    let opts = ExchangeOptions { windows, chunk };
                    let (batches, stats) =
                        exchange_features_windows(comm, mk_pairs(comm.rank()), &decomp, &opts)
                            .unwrap();
                    let (flat, _) =
                        exchange_features(comm, mk_pairs(comm.rank()), &decomp, &opts).unwrap();
                    (batches, flat, stats.rounds)
                });
                for (batches, flat, rounds) in &out {
                    assert_eq!(batches.len(), windows as usize, "{chunk:?}");
                    assert_eq!(&batches.concat(), flat, "{chunk:?} windows={windows}");
                    if chunk != ExchangeChunk::Unlimited {
                        assert!(*rounds > 1, "48-byte cap must multi-round");
                    }
                }
            }
        }
    }

    /// Satellite oracle: walking a buffer with [`record_frames`] and
    /// materializing each frame must reproduce `deserialize_records`
    /// exactly — cells, geometries (all shape classes) and userdata.
    #[test]
    fn record_frames_match_deserialize_records() {
        let mut buf = Vec::new();
        let wkts = [
            "POINT (3 4)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
        ];
        for (i, w) in wkts.iter().enumerate() {
            let f = Feature::with_userdata(wkt::parse(w).unwrap(), format!("id={i}"));
            serialize_record(i as u32, &f, &mut Vec::new(), &mut buf).unwrap();
        }
        assert_eq!(validate_frames(&buf).unwrap(), wkts.len() as u64);
        let owned = deserialize_records(&buf).unwrap();
        let borrowed: Vec<(u32, Feature)> = record_frames(&buf)
            .map(|fr| {
                let (g, used) = mvio_geom::wkb::decode_ref(fr.wkb).unwrap();
                assert_eq!(used, fr.wkb.len());
                (
                    fr.cell,
                    Feature::with_userdata(g.to_geometry(), fr.userdata),
                )
            })
            .collect();
        assert_eq!(owned, borrowed);
    }

    /// Corruption anywhere in a buffer must fail [`validate_frames`] with
    /// the same typed error the owned decoder produces — the zero-copy
    /// path may skip materialization, never checking.
    #[test]
    fn validate_frames_rejects_what_deserialize_rejects() {
        let mut buf = Vec::new();
        let f = Feature::with_userdata(wkt::parse("LINESTRING (0 0, 5 5)").unwrap(), "ud");
        serialize_record(3, &f, &mut Vec::new(), &mut buf).unwrap();
        serialize_record(4, &feature(1.0, 2.0, "x"), &mut Vec::new(), &mut buf).unwrap();

        // Every truncation point fails both decoders.
        for cut in 0..buf.len() {
            if cut == 0 {
                continue; // empty buffer is trivially valid for both
            }
            let owned = deserialize_records(&buf[..cut]);
            let frames = validate_frames(&buf[..cut]);
            assert_eq!(owned.is_err(), frames.is_err(), "cut {cut}");
        }

        // Geometry byte corruption (WKB type code) fails both, same error.
        let mut bad_type = buf.clone();
        bad_type[13] = 99; // type code low byte inside the first WKB body
        let owned = deserialize_records(&bad_type).unwrap_err();
        let frames = validate_frames(&bad_type).unwrap_err();
        assert_eq!(owned.to_string(), frames.to_string());

        // Non-UTF8 userdata fails both.
        let mut bad_ud = buf.clone();
        let ud_at = buf.len() - 1; // last byte of the trailing "x" userdata
        bad_ud[ud_at] = 0xff;
        assert!(deserialize_records(&bad_ud).is_err());
        assert!(validate_frames(&bad_ud).is_err());
    }

    /// The zero-copy exchange is the owned exchange, bit for bit: same
    /// records in the same order, for blocking and chunked policies and
    /// any window count — only the receive-side representation differs.
    #[test]
    fn frames_exchange_is_bit_identical_to_owned() {
        let num_cells = 6;
        for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(48)] {
            for windows in [1u32, 3] {
                let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
                    let mk_pairs = |rank: usize| -> Vec<(u32, Feature)> {
                        (0..num_cells)
                            .map(|c| (c, feature(c as f64, rank as f64, "0123456789abcdef")))
                            .collect()
                    };
                    let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
                    let opts = ExchangeOptions { windows, chunk };
                    let (stores, fstats) = exchange_features_frames_windows(
                        comm,
                        mk_pairs(comm.rank()),
                        &decomp,
                        &opts,
                    )
                    .unwrap();
                    let (batches, ostats) =
                        exchange_features_windows(comm, mk_pairs(comm.rank()), &decomp, &opts)
                            .unwrap();
                    (stores, batches, fstats, ostats)
                });
                for (stores, batches, fstats, ostats) in out {
                    assert_eq!(stores.len(), batches.len(), "{chunk:?}");
                    for (store, batch) in stores.iter().zip(&batches) {
                        assert_eq!(store.records(), batch.len() as u64);
                        let materialized: Vec<(u32, Feature)> = store
                            .frames()
                            .map(|fr| {
                                let (g, _) = mvio_geom::wkb::decode_ref(fr.wkb).unwrap();
                                (
                                    fr.cell,
                                    Feature::with_userdata(g.to_geometry(), fr.userdata),
                                )
                            })
                            .collect();
                        assert_eq!(&materialized, batch, "{chunk:?} windows={windows}");
                    }
                    // Same wire traffic, same rounds; only the receive-side
                    // compute model differs.
                    assert_eq!(fstats.bytes_received, ostats.bytes_received);
                    assert_eq!(fstats.records_received, ostats.records_received);
                    assert_eq!(fstats.rounds, ostats.rounds);
                }
            }
        }
    }

    /// [`exchange_serialized_frames_with`] mirrors
    /// [`exchange_serialized_with`] — the single-window entry point used
    /// by the snapshot read path.
    #[test]
    fn serialized_frames_exchange_matches_owned() {
        for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(64)] {
            let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
                let mk_batch = |rank: usize, p: usize| -> SerializedBatch {
                    let mut batch = SerializedBatch::empty(p);
                    for dst in 0..p {
                        for i in 0..3u32 {
                            let f = feature(rank as f64, i as f64, &format!("r{rank}d{dst}i{i}"));
                            serialize_record(dst as u32, &f, &mut Vec::new(), &mut batch.bufs[dst])
                                .unwrap();
                            batch.records[dst] += 1;
                        }
                    }
                    batch
                };
                let opts = ExchangeOptions { windows: 1, chunk };
                let p = comm.size();
                let (store, _) =
                    exchange_serialized_frames_with(comm, mk_batch(comm.rank(), p), &opts).unwrap();
                let (owned, _) =
                    exchange_serialized_with(comm, mk_batch(comm.rank(), p), &opts).unwrap();
                let materialized: Vec<(u32, Feature)> = store
                    .frames()
                    .map(|fr| {
                        let (g, _) = mvio_geom::wkb::decode_ref(fr.wkb).unwrap();
                        (
                            fr.cell,
                            Feature::with_userdata(g.to_geometry(), fr.userdata),
                        )
                    })
                    .collect();
                (materialized, owned)
            });
            for (materialized, owned) in out {
                assert_eq!(materialized, owned, "{chunk:?}");
            }
        }
    }

    /// The [`ZeroCopy`] knob resolves like the other exchange knobs:
    /// explicit settings never consult the environment, `Auto` defers to
    /// [`ZEROCOPY_ENV`], and an unset environment means **on**.
    #[test]
    fn zerocopy_knob_resolution() {
        assert!(ZeroCopy::On.resolve());
        assert!(!ZeroCopy::Off.resolve());
        // `Auto` must agree with whatever the ambient environment says
        // (CI matrix rows pin it; locally it is usually unset → on).
        let expect = match std::env::var(ZEROCOPY_ENV) {
            Err(_) => true,
            Ok(v) => !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            ),
        };
        assert_eq!(ZeroCopy::Auto.resolve(), expect);
    }
}
