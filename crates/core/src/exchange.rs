//! The all-to-all geometry exchange (paper §4.2.3): serialization, the
//! two-round `Alltoall` + `Alltoallv` protocol, and the sliding-window
//! variant for memory-bounded runs.
//!
//! "Before actually sending the entire co-ordinate data using
//! MPI_Alltoallv, the processes exchange the buffer related information
//! among them using MPI_Alltoall which is then used to calculate the
//! receiver side count and displacement arrays of MPI_Alltoallv."
//!
//! Routing is decomposition-agnostic: pairs go to whichever rank the
//! [`SpatialDecomposition`] assigns their cell to, whether that is the
//! paper's round-robin uniform grid or one of the skew-aware policies in
//! [`crate::decomp`].

use crate::decomp::SpatialDecomposition;
use crate::{CoreError, Feature, Result};
use mvio_geom::wkb;
use mvio_msim::{Comm, Work};

/// Options for one exchange.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeOptions {
    /// Number of sliding-window phases. 1 = single-shot (the default);
    /// larger values exchange "spatial data contained in a chunk of cells"
    /// per phase to bound peak memory (paper: "Handling large data
    /// exchange").
    pub windows: u32,
}

impl Default for ExchangeOptions {
    fn default() -> Self {
        ExchangeOptions { windows: 1 }
    }
}

/// Counters describing one exchange, used by the breakdown reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeStats {
    /// Bytes this rank serialized and sent.
    pub bytes_sent: u64,
    /// Bytes this rank received and deserialized.
    pub bytes_received: u64,
    /// Records sent (cell-replicated).
    pub records_sent: u64,
    /// Records received.
    pub records_received: u64,
    /// Sliding-window phases executed.
    pub phases: u32,
}

/// Wire format of one record: `[u64 cell][u32 wkb_len][wkb][u32 ud_len][ud]`.
///
/// Length fields are checked conversions: a geometry or userdata payload
/// over `u32::MAX` bytes is an error, not a silently truncated length that
/// the receiver would misparse as a corrupt stream.
///
/// `scratch` is a caller-owned staging buffer reused across records: the
/// geometry encodes into it behind a [`wkb::encoded_len`] size pre-pass
/// (one exact `reserve`, no growth checks in the coordinate loop), then
/// lands in `out` as one bulk copy. Hot loops serialize millions of
/// records; the old per-record `wkb::encode` allocated and dropped a
/// fresh `Vec` for every one of them. (Shared with the ingest pipeline's
/// worker threads, hence `pub(crate)`.)
pub(crate) fn serialize_record(
    cell: u32,
    feature: &Feature,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<()> {
    let too_big = |what: &str, len: usize| {
        CoreError::Partition(format!(
            "exchange serialization: {what} of {len} bytes exceeds the u32 wire-format limit"
        ))
    };
    wkb::encode_into_scratch(&feature.geometry, scratch);
    let glen = u32::try_from(scratch.len()).map_err(|_| too_big("geometry", scratch.len()))?;
    let ulen = u32::try_from(feature.userdata.len())
        .map_err(|_| too_big("userdata", feature.userdata.len()))?;
    out.reserve(16 + scratch.len() + feature.userdata.len());
    out.extend_from_slice(&(cell as u64).to_le_bytes());
    out.extend_from_slice(&glen.to_le_bytes());
    out.extend_from_slice(scratch);
    out.extend_from_slice(&ulen.to_le_bytes());
    out.extend_from_slice(feature.userdata.as_bytes());
    Ok(())
}

fn deserialize_records(mut buf: &[u8]) -> Result<Vec<(u32, Feature)>> {
    let mut out = Vec::new();
    let bad = |msg: &str| CoreError::Partition(format!("exchange deserialization: {msg}"));
    while !buf.is_empty() {
        if buf.len() < 12 {
            return Err(bad("truncated header"));
        }
        let cell = u64::from_le_bytes(buf[..8].try_into().unwrap()) as u32;
        let glen = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        buf = &buf[12..];
        if buf.len() < glen + 4 {
            return Err(bad("truncated geometry"));
        }
        let (geometry, used) = wkb::decode(&buf[..glen]).map_err(|e| CoreError::Parse {
            record: "<wkb>".into(),
            source: e,
        })?;
        debug_assert_eq!(used, glen);
        buf = &buf[glen..];
        let ulen = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        buf = &buf[4..];
        if buf.len() < ulen {
            return Err(bad("truncated userdata"));
        }
        let userdata =
            String::from_utf8(buf[..ulen].to_vec()).map_err(|_| bad("non-UTF8 userdata"))?;
        buf = &buf[ulen..];
        out.push((cell, Feature { geometry, userdata }));
    }
    Ok(out)
}

/// Exchanges `(cell, feature)` pairs so that every pair lands on the rank
/// owning its cell under `decomp`. Input pairs may reference any cells;
/// the output contains exactly the pairs owned by this rank, from all
/// ranks.
///
/// The protocol per window: serialize per destination → `Alltoall` of
/// byte counts → `Alltoallv` of payloads → deserialize. Serialization and
/// deserialization charge the rank's clock (they are the "communication
/// buffer management overhead" in the paper's breakdown figures).
pub fn exchange_features<D: SpatialDecomposition + ?Sized>(
    comm: &mut Comm,
    pairs: Vec<(u32, Feature)>,
    decomp: &D,
    opts: &ExchangeOptions,
) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
    let p = comm.size();
    debug_assert_eq!(
        decomp.num_ranks(),
        p,
        "decomposition built for a different world size"
    );
    let num_cells = decomp.num_cells();
    let windows = opts.windows.max(1).min(num_cells.max(1));
    let mut stats = ExchangeStats {
        phases: windows,
        ..Default::default()
    };
    let mut received: Vec<(u32, Feature)> = Vec::new();

    // Pre-bucket pairs by window to avoid rescanning per phase.
    let cells_per_window = num_cells.div_ceil(windows).max(1);
    let mut by_window: Vec<Vec<(u32, Feature)>> = (0..windows).map(|_| Vec::new()).collect();
    for (cell, f) in pairs {
        let w = (cell / cells_per_window).min(windows - 1);
        by_window[w as usize].push((cell, f));
    }

    let mut scratch = Vec::new();
    for window_pairs in by_window {
        // Serialize per destination rank (charged per object: the paper's
        // "buffer management overhead in serialization").
        let mut batch = SerializedBatch::empty(p);
        for (cell, feature) in &window_pairs {
            let dst = decomp.cell_to_rank(*cell);
            serialize_record(*cell, feature, &mut scratch, &mut batch.bufs[dst])?;
            batch.records[dst] += 1;
        }
        comm.charge(Work::SerializeGeoms {
            n: batch.records.iter().sum(),
            bytes: batch.bufs.iter().map(|b| b.len() as u64).sum(),
        });

        // The window's two-round protocol + deserialization is exactly
        // the pre-serialized exchange.
        let (mut records, w) = exchange_serialized(comm, batch)?;
        received.append(&mut records);
        stats.records_sent += w.records_sent;
        stats.bytes_sent += w.bytes_sent;
        stats.records_received += w.records_received;
        stats.bytes_received += w.bytes_received;
    }

    Ok((received, stats))
}

/// Per-destination payloads that were already serialized upstream — the
/// streamed batches the ingest pipeline's worker threads produce
/// ([`crate::pipeline::partition_chunked`]). One buffer and one record
/// count per destination rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SerializedBatch {
    /// Wire-format bytes destined for each rank (`bufs.len() == world size`).
    pub bufs: Vec<Vec<u8>>,
    /// Records contained in each destination buffer.
    pub records: Vec<u64>,
}

impl SerializedBatch {
    /// An empty batch for a `p`-rank world.
    pub fn empty(p: usize) -> Self {
        SerializedBatch {
            bufs: vec![Vec::new(); p],
            records: vec![0; p],
        }
    }
}

/// Single-window exchange of pre-serialized per-destination buffers: the
/// two-round `Alltoall` + `Alltoallv` protocol of [`exchange_features`]
/// without the serialization pass, which the caller (the ingest pipeline)
/// already performed — and already charged to the clock — on its worker
/// threads. Only the receive-side deserialization is charged here.
pub fn exchange_serialized(
    comm: &mut Comm,
    batch: SerializedBatch,
) -> Result<(Vec<(u32, Feature)>, ExchangeStats)> {
    let p = comm.size();
    assert_eq!(batch.bufs.len(), p, "one buffer per destination rank");
    assert_eq!(batch.records.len(), p, "one record count per destination");
    let mut stats = ExchangeStats {
        phases: 1,
        records_sent: batch.records.iter().sum(),
        bytes_sent: batch.bufs.iter().map(|b| b.len() as u64).sum(),
        ..Default::default()
    };

    let sizes: Vec<u64> = batch.bufs.iter().map(|b| b.len() as u64).collect();
    let incoming_sizes = comm.alltoall_u64(sizes);
    let recv_bufs = comm.alltoallv(batch.bufs);
    for (src, buf) in recv_bufs.iter().enumerate() {
        debug_assert_eq!(buf.len() as u64, incoming_sizes[src]);
    }
    stats.bytes_received = recv_bufs.iter().map(|b| b.len() as u64).sum();

    let mut received = Vec::new();
    for buf in recv_bufs {
        let mut records = deserialize_records(&buf)?;
        stats.records_received += records.len() as u64;
        received.append(&mut records);
    }
    comm.charge(Work::SerializeGeoms {
        n: stats.records_received,
        bytes: stats.bytes_received,
    });
    Ok((received, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::grid::{CellMap, GridSpec, UniformGrid};
    use mvio_geom::{wkt, Point, Rect};
    use mvio_msim::{Topology, World, WorldConfig};

    fn feature(x: f64, y: f64, ud: &str) -> Feature {
        Feature::with_userdata(mvio_geom::Geometry::Point(Point::new(x, y)), ud)
    }

    /// A `cells × 1` uniform decomposition over a unit-height strip, so
    /// cell ids match the old map-only tests one-to-one.
    fn strip(cells: u32, map: CellMap, ranks: usize) -> UniformDecomposition {
        let grid = UniformGrid::new(
            Rect::new(0.0, 0.0, cells as f64, 1.0),
            GridSpec {
                cells_x: cells,
                cells_y: 1,
            },
        );
        UniformDecomposition::new(grid, map, ranks)
    }

    #[test]
    fn record_round_trip() {
        let f = Feature::with_userdata(
            wkt::parse("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap(),
            "name=park",
        );
        let mut buf = Vec::new();
        serialize_record(42, &f, &mut Vec::new(), &mut buf).unwrap();
        let out = deserialize_records(&buf).unwrap();
        assert_eq!(out, vec![(42, f)]);
    }

    #[test]
    fn deserialize_rejects_truncation() {
        let f = feature(1.0, 2.0, "x");
        let mut buf = Vec::new();
        serialize_record(1, &f, &mut Vec::new(), &mut buf).unwrap();
        for cut in [1, 8, 13, buf.len() - 1] {
            assert!(deserialize_records(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn exchange_routes_pairs_to_cell_owners() {
        let num_cells = 8;
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            // Every rank produces one pair for every cell.
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| {
                    (
                        c,
                        feature(c as f64, comm.rank() as f64, &format!("r{}", comm.rank())),
                    )
                })
                .collect();
            let (mine, stats) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            (mine, stats)
        });
        for (rank, (mine, stats)) in out.iter().enumerate() {
            // Round-robin: rank owns cells c with c % 4 == rank; 2 cells
            // each, with contributions from all 4 ranks.
            assert_eq!(mine.len(), 2 * 4, "rank {rank}");
            assert!(mine.iter().all(|(c, _)| (*c as usize) % 4 == rank));
            assert_eq!(stats.records_sent, 8);
            assert_eq!(stats.records_received, 8);
            assert!(stats.bytes_sent > 0);
        }
    }

    #[test]
    fn sliding_window_preserves_results() {
        let num_cells = 16;
        let single = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let (mut mine, stats) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            mine.sort_by_key(|(c, _)| *c);
            (mine, stats.phases)
        });
        let windowed = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let decomp = strip(num_cells, CellMap::RoundRobin, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let opts = ExchangeOptions { windows: 4 };
            let (mut mine, stats) = exchange_features(comm, pairs, &decomp, &opts).unwrap();
            mine.sort_by_key(|(c, _)| *c);
            (mine, stats.phases)
        });
        for rank in 0..4 {
            assert_eq!(single[rank].0, windowed[rank].0, "rank {rank}");
        }
        assert_eq!(single[0].1, 1);
        assert_eq!(windowed[0].1, 4);
    }

    #[test]
    fn empty_exchange_is_fine() {
        let out = World::run(WorldConfig::new(Topology::single_node(3)), |comm| {
            let decomp = strip(8, CellMap::RoundRobin, comm.size());
            let (mine, stats) =
                exchange_features(comm, vec![], &decomp, &ExchangeOptions::default()).unwrap();
            (mine.len(), stats.bytes_sent)
        });
        assert!(out.iter().all(|&(n, b)| n == 0 && b == 0));
    }

    #[test]
    fn block_map_exchange() {
        let num_cells = 12;
        let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            let decomp = strip(num_cells, CellMap::Block, comm.size());
            let pairs: Vec<(u32, Feature)> = (0..num_cells)
                .map(|c| (c, feature(c as f64, 0.0, "")))
                .collect();
            let (mine, _) =
                exchange_features(comm, pairs, &decomp, &ExchangeOptions::default()).unwrap();
            let mut cells: Vec<u32> = mine.iter().map(|(c, _)| *c).collect();
            cells.sort_unstable();
            cells.dedup();
            cells
        });
        // Block map: rank 0 owns 0..4, rank 1 owns 4..8, rank 2 owns 8..12.
        assert_eq!(out[0], vec![0, 1, 2, 3]);
        assert_eq!(out[1], vec![4, 5, 6, 7]);
        assert_eq!(out[2], vec![8, 9, 10, 11]);
    }
}
