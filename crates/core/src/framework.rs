//! The distributed filter-and-refine framework (paper §4.3, Figure 7).
//!
//! "For partitioned data, spatial computation can be carried out by
//! extending refine interface that receives two collection of geometries
//! in a cell." This module is that interface: after the grid exchange,
//! every rank owns complete cells; [`FilterRefine::run_refine`] groups the exchanged
//! pairs by cell and hands each cell's two collections to the
//! user-supplied refine closure. `mvio-sjoin` supplies the spatial-join
//! refine; a batch spatial query would supply a different one.

use crate::decomp::SpatialDecomposition;
use crate::Feature;
use mvio_geom::Rect;
use mvio_msim::Comm;
use std::collections::BTreeMap;

/// One cell-local unit of refine work: the paper's "abstract type to
/// represent a unit task in our system".
#[derive(Debug)]
pub struct RefineTask<'a> {
    /// Cell id.
    pub cell: u32,
    /// The cell's rectangle (used for duplicate avoidance).
    pub cell_rect: Rect,
    /// Geometries of the left layer mapped to this cell.
    pub left: Vec<&'a Feature>,
    /// Geometries of the right layer mapped to this cell.
    pub right: Vec<&'a Feature>,
}

/// Marker struct bundling the framework entry points.
pub struct FilterRefine;

impl FilterRefine {
    /// Groups two exchanged layers by cell and invokes `refine` once per
    /// cell this rank owns that is populated on the left layer. Results
    /// are concatenated in ascending cell order (deterministic).
    ///
    /// `refine` receives the communicator so it can charge its actual
    /// compute work to the virtual clock.
    /// Not collective — refinement is cell-local; the communicator only
    /// charges compute.
    pub fn run_refine<'a, R>(
        comm: &mut Comm,
        decomp: &dyn SpatialDecomposition,
        left: &'a [(u32, Feature)],
        right: &'a [(u32, Feature)],
        refine: impl FnMut(&mut Comm, RefineTask<'a>) -> Vec<R>,
    ) -> Vec<R> {
        Self::run_refine_batched(comm, decomp, [left], [right], refine)
    }

    /// Streamed-batch variant of [`FilterRefine::run_refine`]: accepts the
    /// exchanged pairs as any number of batches per side (e.g. one batch
    /// per sliding-window phase of the exchange, or per pipeline chunk)
    /// without requiring the caller to concatenate them into one snapshot
    /// vector first. Grouping is by cell id, so the batch boundaries do
    /// not affect the result; within a cell, features keep
    /// batch-then-offset order, matching the concatenated sequential path
    /// bit for bit.
    /// Not collective — refinement is cell-local; the communicator only
    /// charges compute.
    pub fn run_refine_batched<'a, R>(
        comm: &mut Comm,
        decomp: &dyn SpatialDecomposition,
        left_batches: impl IntoIterator<Item = &'a [(u32, Feature)]>,
        right_batches: impl IntoIterator<Item = &'a [(u32, Feature)]>,
        mut refine: impl FnMut(&mut Comm, RefineTask<'a>) -> Vec<R>,
    ) -> Vec<R> {
        let rank = comm.rank();

        let mut by_cell: BTreeMap<u32, (Vec<&'a Feature>, Vec<&'a Feature>)> = BTreeMap::new();
        for batch in left_batches {
            for (cell, f) in batch {
                debug_assert_eq!(decomp.cell_to_rank(*cell), rank, "left pair misrouted");
                by_cell.entry(*cell).or_default().0.push(f);
            }
        }
        for batch in right_batches {
            for (cell, f) in batch {
                debug_assert_eq!(decomp.cell_to_rank(*cell), rank, "right pair misrouted");
                by_cell.entry(*cell).or_default().1.push(f);
            }
        }

        let mut out = Vec::new();
        for (cell, (l, r)) in by_cell {
            let task = RefineTask {
                cell,
                cell_rect: decomp.cell_rect(cell),
                left: l,
                right: r,
            };
            out.extend(refine(comm, task));
        }
        out
    }
}

/// Duplicate avoidance by the reference-point method: a candidate pair is
/// reported only by the cell containing the min corner of the
/// intersection of the two MBRs. Geometries replicated into several cells
/// therefore produce each result exactly once ("duplicate avoidance is
/// carried out later in the refinement phase", §4).
///
/// Containment is half-open on the max edges so adjacent cells cannot
/// both claim a shared boundary point. Prefer the grid-aware
/// [`claims_reference`] in pipeline code: it additionally closes the
/// grid's *outer* max edges, where no neighbouring cell exists to pick
/// the point up.
pub fn is_reference_cell(cell_rect: &Rect, a: &Rect, b: &Rect) -> bool {
    let i = a.intersection(b);
    if i.is_empty() {
        return false;
    }
    let (x, y) = (i.min_x, i.min_y);
    x >= cell_rect.min_x && x < cell_rect.max_x && y >= cell_rect.min_y && y < cell_rect.max_y
}

/// Decomposition-aware reference-point rule: like [`is_reference_cell`]
/// but cells on the decomposition's outer max edges
/// ([`SpatialDecomposition::cell_on_max_edge`]) also claim points lying
/// exactly on the global max boundary (otherwise results there would be
/// silently dropped — no neighbouring cell exists to pick them up).
pub fn claims_reference(decomp: &dyn SpatialDecomposition, cell: u32, a: &Rect, b: &Rect) -> bool {
    let i = a.intersection(b);
    if i.is_empty() {
        return false;
    }
    let (x, y) = (i.min_x, i.min_y);
    let r = decomp.cell_rect(cell);
    let (max_col, max_row) = decomp.cell_on_max_edge(cell);
    let x_ok = x >= r.min_x && (x < r.max_x || (max_col && x <= r.max_x));
    let y_ok = y >= r.min_y && (y < r.max_y || (max_row && y <= r.max_y));
    x_ok && y_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::UniformDecomposition;
    use crate::grid::{CellMap, GridSpec, UniformGrid};
    use mvio_geom::{Geometry, Point};
    use mvio_msim::{Topology, World, WorldConfig};

    fn pt(x: f64, y: f64) -> Feature {
        Feature::new(Geometry::Point(Point::new(x, y)))
    }

    fn decomp2() -> UniformDecomposition {
        UniformDecomposition::new(
            UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), GridSpec::square(2)),
            CellMap::RoundRobin,
            2,
        )
    }

    #[test]
    fn refine_runs_once_per_populated_cell() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let decomp = decomp2();
            // Rank r owns cells with c % 2 == r.
            let my_cells: Vec<u32> = decomp.cells_of_rank(comm.rank());
            let left: Vec<(u32, Feature)> =
                my_cells.iter().map(|&c| (c, pt(c as f64, 0.0))).collect();
            let right: Vec<(u32, Feature)> =
                my_cells.iter().map(|&c| (c, pt(c as f64, 1.0))).collect();
            let mut seen = Vec::new();
            FilterRefine::run_refine(comm, &decomp, &left, &right, |_, task| {
                seen.push((task.cell, task.left.len(), task.right.len()));
                vec![task.cell]
            })
        });
        assert_eq!(out[0], vec![0, 2]);
        assert_eq!(out[1], vec![1, 3]);
    }

    #[test]
    fn claims_reference_closes_only_the_outer_max_edges() {
        let decomp = UniformDecomposition::new(
            UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), GridSpec::square(4)),
            CellMap::RoundRobin,
            2,
        );
        // Reference point exactly on the global max corner: only the last
        // cell claims it.
        let a = Rect::new(4.0, 4.0, 4.0, 4.0);
        let claiming: Vec<u32> = (0..16)
            .filter(|&c| claims_reference(&decomp, c, &a, &a))
            .collect();
        assert_eq!(claiming, vec![15]);
        // An interior shared corner stays half-open: one claimant.
        let b = Rect::new(2.0, 2.0, 2.0, 2.0);
        let claiming: Vec<u32> = (0..16)
            .filter(|&c| claims_reference(&decomp, c, &b, &b))
            .collect();
        assert_eq!(claiming.len(), 1);
    }

    #[test]
    fn reference_point_dedup_claims_exactly_one_cell() {
        let grid = UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), GridSpec::square(4));
        // Two rects overlapping across cells (1,1)..(2,2).
        let a = Rect::new(0.5, 0.5, 2.5, 2.5);
        let b = Rect::new(1.5, 1.5, 3.5, 3.5);
        let claiming: Vec<u32> = (0..16)
            .filter(|&c| is_reference_cell(&grid.cell_rect(c), &a, &b))
            .collect();
        // Intersection = (1.5,1.5)-(2.5,2.5); reference point (1.5,1.5)
        // lies in cell row 1, col 1 = id 5. Exactly one claimant.
        assert_eq!(claiming, vec![5]);
    }

    #[test]
    fn reference_point_on_cell_edge_is_unambiguous() {
        let grid = UniformGrid::new(Rect::new(0.0, 0.0, 2.0, 2.0), GridSpec::square(2));
        // Intersection reference point exactly on the shared corner (1,1).
        let a = Rect::new(1.0, 1.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 1.5, 1.5);
        let claiming: Vec<u32> = (0..4)
            .filter(|&c| is_reference_cell(&grid.cell_rect(c), &a, &b))
            .collect();
        assert_eq!(claiming.len(), 1, "exactly one cell claims an edge point");
        assert_eq!(claiming, vec![3]); // the NE cell, whose min corner it is
    }

    #[test]
    fn disjoint_mbrs_claim_nothing() {
        let cell = Rect::new(0.0, 0.0, 10.0, 10.0);
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert!(!is_reference_cell(&cell, &a, &b));
    }
}
