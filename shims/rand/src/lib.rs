//! Offline stand-in for the `rand` crate (0.8-era API surface), covering
//! exactly what this workspace uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different
//! stream than the real crate's ChaCha12, but every consumer in this
//! workspace only requires *determinism*, not a specific stream: all
//! datasets, experiments and tests derive from seeds routed through this
//! one implementation, so results are bit-reproducible.

pub mod rngs;

pub use rngs::StdRng;

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges acceptable to `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
        // Full-width inclusive range must not overflow.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
