//! Offline stand-in for the `criterion` benchmark harness. Implements
//! the subset this workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, `Bencher::iter`
//! and `black_box` — with a deliberately small sample budget so a full
//! bench run stays quick. No statistics, plots or baselines: each
//! benchmark warms up once, runs a handful of timed batches, and prints
//! the best mean time per iteration (plus throughput when declared).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark aims to measure, total.
const TARGET_MEASURE: Duration = Duration::from_millis(200);
const BATCHES: u32 = 5;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _parent: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warm-up single iteration, also calibrates the batch size.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_batch = TARGET_MEASURE / BATCHES;
    let iters = (per_batch.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..BATCHES {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed / (iters as u32);
        best = best.min(mean);
    }

    match throughput {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / best.as_secs_f64() / 1e9;
            println!("{id:<48} {best:>12.3?}/iter  {gbps:>8.3} GB/s");
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / best.as_secs_f64() / 1e6;
            println!("{id:<48} {best:>12.3?}/iter  {meps:>8.3} Melem/s");
        }
        None => println!("{id:<48} {best:>12.3?}/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
