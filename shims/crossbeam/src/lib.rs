//! Offline stand-in for the `crossbeam` crate. Only `channel::unbounded`
//! and the `Sender`/`Receiver` pair are needed by this workspace; both
//! endpoints are cloneable and `Sync` (unlike `std::sync::mpsc`), which
//! the SPMD runtime relies on to share a `Vec<Sender<_>>` across rank
//! threads through one `Arc`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message back, as in crossbeam.
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or errors once the queue is
        /// drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(msg) => Ok(msg),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect instead of sleeping forever.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_cross_threads_in_order() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}
