//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync`. Mirrors the subset of the API this workspace uses:
//! guards without `LockResult` wrappers and no lock poisoning (a
//! poisoned std lock is transparently recovered, matching parking_lot's
//! semantics where a panicking holder simply releases the lock).

use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified. The guard is atomically released while
    /// waiting and re-acquired before returning, as in parking_lot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate_across_threads() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g < 3 {
                cv.wait(&mut g);
            }
            *g
        });
        for _ in 0..3 {
            let (m, cv) = &*pair;
            *m.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 3);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
