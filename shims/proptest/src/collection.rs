//! Collection strategies: `collection::vec(strategy, size)`.

use crate::strategy::Strategy;
use crate::test_runner::{Reason, TestRunner};
use std::ops::Range;

/// Element-count specification: a fixed count or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Reason> {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span > 0 { runner.pick(span) } else { 0 };
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

/// `proptest::collection::vec(element_strategy, 1..40)`
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::ProptestConfig;

    #[test]
    fn vec_lengths_respect_range() {
        let mut r = TestRunner::new(ProptestConfig::default(), "vec_unit");
        let s = vec(0u8..10, 2..6);
        for _ in 0..200 {
            let v = s.new_value(&mut r).unwrap();
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
        let fixed = vec(0u8..10, 3usize);
        assert_eq!(fixed.new_value(&mut r).unwrap().len(), 3);
    }
}
