//! Offline stand-in for the `proptest` crate, implementing the subset of
//! its API that this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_filter_map`, `prop_recursive` and `boxed`;
//! * strategies for integer/float ranges, tuples (arity ≤ 8), `Just`,
//!   `any::<T>()` and [`collection::vec`];
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; since generation is deterministic the case is
//!   trivially re-runnable.
//! * **Deterministic by default.** Each test's RNG is seeded from the
//!   test's name (FNV-1a) mixed with `ProptestConfig::seed`, so runs
//!   are bit-reproducible in CI with no `proptest-regressions/`
//!   machinery. The `PROPTEST_SEED` environment variable overrides the
//!   mixed seed *verbatim* — paste the seed from a failure message to
//!   replay that exact stream, or pick any value to explore a new one.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case (with no panic unwinding through generation machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// `prop_assume!(cond)` — rejects (skips) the current case without
/// counting it towards the configured case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `prop_oneof![a, b, c]` — uniform choice between strategies of a
/// common `Value`; `prop_oneof![2 => a, 1 => b]` — weighted choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-suite macro. Each `fn name(binding in strategy, ..) { .. }`
/// becomes a `#[test]` that deterministically generates
/// `ProptestConfig::cases` inputs and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < runner.config().cases {
                let case = match $crate::strategy::Strategy::new_value(&strategy, &mut runner) {
                    ::core::result::Result::Ok(v) => v,
                    ::core::result::Result::Err(reason) => {
                        rejected += 1;
                        if rejected > runner.config().max_global_rejects {
                            panic!(
                                "proptest '{}': too many generation rejects ({}): {}",
                                stringify!($name), rejected, reason
                            );
                        }
                        continue;
                    }
                };
                let rendered = format!("{:?}", case);
                let ($($binding,)+) = case;
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > runner.config().max_global_rejects {
                            panic!(
                                "proptest '{}': too many rejected cases ({})",
                                stringify!($name), rejected
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s)\n  {}\n  inputs: {}\n  seed: {:#x} (set PROPTEST_SEED to reproduce)",
                            stringify!($name), accepted, msg, rendered, runner.seed()
                        );
                    }
                }
            }
        }
    )*};
}
