//! The `Strategy` trait and combinators. Generation-only (no shrink
//! trees): a strategy is a deterministic function of the runner's RNG.

use crate::test_runner::{Reason, TestRunner};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// How many times filtering combinators retry locally before giving up
/// and reporting a rejection to the runner.
const LOCAL_REJECT_RETRIES: u32 = 64;

pub trait Strategy {
    type Value;

    fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<Reason>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    fn prop_filter_map<O, F>(self, reason: impl Into<Reason>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Recursive strategies of bounded depth. `depth` bounds nesting;
    /// `desired_size`/`expected_branch_size` are accepted for API
    /// compatibility (generation-only, so they do not constrain memory).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level, bias towards recursion but keep leaves
            // reachable so generated sizes vary.
            let deeper = recurse(current).boxed();
            current = Union::new_weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        self.0.new_value(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> Result<O, Reason> {
        self.inner.new_value(runner).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: Reason,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Result<S::Value, Reason> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            let v = self.inner.new_value(runner)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(self.reason.clone())
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    reason: Reason,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> Result<O, Reason> {
        for _ in 0..LOCAL_REJECT_RETRIES {
            let v = self.inner.new_value(runner)?;
            if let Some(out) = (self.f)(v) {
                return Ok(out);
            }
        }
        Err(self.reason.clone())
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! of zero strategies");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        let mut ticket = runner.pick(self.total_weight as usize) as u64;
        for (weight, strat) in &self.arms {
            if ticket < *weight as u64 {
                return strat.new_value(runner);
            }
            ticket -= *weight as u64;
        }
        unreachable!("ticket within total weight")
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reason> {
                Ok(rand::Rng::gen_range(runner.rng(), self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> Result<$t, Reason> {
                Ok(rand::Rng::gen_range(runner.rng(), self.clone()))
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason> {
                let ($($name,)+) = self;
                Ok(($($name.new_value(runner)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::ProptestConfig;

    fn runner() -> TestRunner {
        TestRunner::new(ProptestConfig::default(), "strategy_unit")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = runner();
        for _ in 0..500 {
            let v = (3usize..9).new_value(&mut r).unwrap();
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).new_value(&mut r).unwrap();
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = runner();
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even>50", |v| *v > 50);
        for _ in 0..100 {
            let v = s.new_value(&mut r).unwrap();
            assert!(v > 50 && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = runner();
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.new_value(&mut r).unwrap() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_generates_varied_depths() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + depth(c),
            }
        }
        let mut r = runner();
        let s = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        let mut max = 0;
        for _ in 0..200 {
            let t = s.new_value(&mut r).unwrap();
            let d = depth(&t);
            assert!(d <= 4);
            max = max.max(d);
        }
        assert!(max >= 2, "recursion never fired (max depth {max})");
    }
}
