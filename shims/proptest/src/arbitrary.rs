//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

pub trait Arbitrary: Sized {
    fn arbitrary_value(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(runner: &mut TestRunner) -> Self {
                runner.rng().gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(T::arbitrary_value(runner))
    }
}

/// Strategy for any value of `T` — `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
