//! Deterministic test runner state: configuration, RNG, case errors.

use rand::{RngCore, SeedableRng, StdRng};

/// Reason a value (or case) was rejected — carried by filters and
//  `prop_assume!`.
#[derive(Debug, Clone)]
pub struct Reason(pub String);

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Reason {
    fn from(s: &str) -> Self {
        Reason(s.to_string())
    }
}

impl From<String> for Reason {
    fn from(s: String) -> Self {
        Reason(s)
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assertions failed; the whole test fails.
    Fail(String),
    /// The case was vetoed by `prop_assume!`; it is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Compatible with the real crate's common usage
/// (`ProptestConfig::with_cases(n)`, struct-update syntax off `default()`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each test must accumulate.
    pub cases: u32,
    /// Abort threshold for rejected/filtered cases.
    pub max_global_rejects: u32,
    /// Base seed mixed with the test name. Overridden by the
    /// `PROPTEST_SEED` environment variable when set.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            seed: 0x4d56_494f,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Pins this suite's RNG stream (mixed per-test with the test name).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-test generation state handed to strategies.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    rng: StdRng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // PROPTEST_SEED is the *final* seed, used verbatim: failure
        // messages print the mixed seed, so pasting it back must land
        // on the identical stream. Without the override, the config's
        // base seed is mixed with the test name so every test in a
        // suite explores a distinct stream.
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                s.strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| s.parse())
                    .ok()
            })
            .unwrap_or_else(|| config.seed ^ fnv1a(test_name.as_bytes()));
        TestRunner {
            config,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn config(&self) -> &ProptestConfig {
        &self.config
    }

    /// The fully-mixed seed this test is running under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform index in `[0, n)` — used by unions and size ranges.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty set");
        (self.rng.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(cfg.clone(), "t");
        let mut b = TestRunner::new(cfg, "t");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn different_names_differ() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return; // verbatim override pins every test to one stream
        }
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(cfg.clone(), "t1");
        let mut b = TestRunner::new(cfg, "t2");
        assert_ne!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn with_seed_changes_stream() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return; // env override takes precedence by design
        }
        let mut a = TestRunner::new(ProptestConfig::default(), "t");
        let mut b = TestRunner::new(ProptestConfig::default().with_seed(99), "t");
        assert_ne!(a.rng().next_u64(), b.rng().next_u64());
    }
}
