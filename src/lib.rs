//! # mpi-vector-io — parallel I/O and partitioning for geospatial vector data
//!
//! A from-scratch Rust reproduction of **MPI-Vector-IO** (Puri, Paudel,
//! Prasad — ICPP 2018): a parallel I/O library for partitioning and
//! reading irregular vector data formats such as Well-Known Text on HPC
//! platforms, with spatial-aware MPI datatypes, reduction operators, and a
//! distributed filter-and-refine framework, demonstrated end-to-end with
//! spatial join.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`pfs`] | `mvio-pfs` | striped parallel-filesystem simulator (Lustre/GPFS) |
//! | [`msim`] | `mvio-msim` | SPMD message-passing runtime, virtual time, MPI-IO |
//! | [`geom`] | `mvio-geom` | geometry engine (WKT/WKB, predicates, R-tree) |
//! | [`core`] | `mvio-core` | MPI-Vector-IO: partitioning, spatial MPI, exchange |
//! | [`sjoin`] | `mvio-sjoin` | distributed spatial join / indexing / range query |
//! | [`datagen`] | `mvio-datagen` | synthetic OSM-like datasets (Table 3 catalog) |
//!
//! ## Quickstart
//!
//! ```
//! use mpi_vector_io::prelude::*;
//!
//! // A 2-node x 2-rank job over a Lustre-like filesystem.
//! let fs = SimFs::new(FsConfig::lustre_comet());
//! let file = fs.create("demo.wkt", None).unwrap();
//! file.append(b"POINT (1 2)\tfirst\nPOINT (3 4)\tsecond\nPOINT (5 6)\tthird\n");
//!
//! let counts = World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
//!     // Block must exceed the longest record (the paper's 11 MB rule,
//!     // shrunk to toy size here).
//!     let opts = ReadOptions::default().with_block_size(64);
//!     let feats = read_features(
//!         comm, &fs, "demo.wkt", &opts, &WktLineParser,
//!     ).unwrap();
//!     comm.allreduce_u64(feats.len() as u64, |a, b| a + b)
//! });
//! assert_eq!(counts, vec![3, 3, 3, 3]);
//! ```

pub use mvio_core as core;
pub use mvio_datagen as datagen;
pub use mvio_geom as geom;
pub use mvio_msim as msim;
pub use mvio_pfs as pfs;
pub use mvio_sjoin as sjoin;

/// One-stop imports for applications.
pub mod prelude {
    pub use mvio_core::decomp::{
        AdaptiveBisection, DecompConfig, DecompPolicy, HilbertDecomposition, SpatialDecomposition,
        UniformDecomposition,
    };
    pub use mvio_core::exchange::{
        exchange_features, ExchangeChunk, ExchangeOptions, ExchangePlan,
    };
    pub use mvio_core::framework::FilterRefine;
    pub use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
    pub use mvio_core::partition::{
        read_features, read_partition_text, BoundaryStrategy, ReadOptions,
    };
    pub use mvio_core::pipeline::{self, PipelineOptions, PipelineStats};
    pub use mvio_core::reader::{CsvPointParser, GeometryParser, WktLineParser};
    pub use mvio_core::snapshot::{
        read_partitioned, write_partitioned, SnapshotMeta, SnapshotReadOptions,
        SnapshotWriteOptions,
    };
    pub use mvio_core::{spops, sptypes, Feature};
    pub use mvio_datagen::{table3, ShapeKind};
    pub use mvio_geom::{wkt, Geometry, LineString, Point, Polygon, Rect};
    pub use mvio_msim::{
        AccessLevel, Comm, CostModel, Datatype, Hints, MpiFile, ProgressEngine, Request,
        ShapeClass, Topology, Work, World, WorldConfig,
    };
    pub use mvio_pfs::{FsConfig, FsKind, SimFs, StripeSpec};
    pub use mvio_sjoin::{
        build_distributed_index, range_query, spatial_join, EngineOptions, JoinOptions, Query,
        QueryAnswer, QueryEngine, ServeCache,
    };
}
