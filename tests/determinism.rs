//! Determinism guarantees: identical seeds and configurations produce
//! bit-identical results — data always, virtual time on collective paths.

use mpi_vector_io::core::grid::GridSpec;
use mpi_vector_io::datagen;
use mpi_vector_io::prelude::*;
use std::sync::Arc;

fn generated_fs(denom: u64) -> Arc<SimFs> {
    let fs = SimFs::new(FsConfig::gpfs_roger());
    for name in ["Lakes", "Cemetery"] {
        let spec = datagen::table3()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let rep = datagen::catalog::generate(&fs, &spec, denom, 11);
        let bytes = fs.open(&rep.path).unwrap().snapshot();
        fs.create(&format!("{}.wkt", name.to_lowercase()), None)
            .unwrap()
            .append(&bytes);
    }
    fs
}

#[test]
fn dataset_generation_is_bit_identical() {
    let a = generated_fs(200_000);
    let b = generated_fs(200_000);
    assert_eq!(
        a.open("lakes.wkt").unwrap().snapshot(),
        b.open("lakes.wkt").unwrap().snapshot()
    );
    assert_eq!(
        a.open("cemetery.wkt").unwrap().snapshot(),
        b.open("cemetery.wkt").unwrap().snapshot()
    );
}

#[test]
fn join_results_are_identical_across_runs() {
    let run = || {
        let fs = generated_fs(100_000);

        World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let opts = JoinOptions {
                grid: GridSpec::square(8),
                read: ReadOptions::default().with_block_size(128 << 10),
                ..Default::default()
            };
            let rep = spatial_join(comm, &fs, "lakes.wkt", "cemetery.wkt", &opts).unwrap();
            (rep.pairs, rep.filter_candidates, rep.refine_tests)
        })
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.0, rb.0, "pairs per rank identical");
        assert_eq!(ra.1, rb.1, "filter candidates identical");
        assert_eq!(ra.2, rb.2, "refine tests identical");
    }
}

#[test]
fn collective_virtual_times_are_identical_across_runs() {
    let run = || {
        World::run(WorldConfig::new(Topology::new(2, 4)), |comm| {
            comm.charge(Work::Seconds(0.01 * (comm.rank() as f64 + 1.0)));
            comm.barrier();
            let v = comm.allreduce_u64(comm.rank() as u64 * 3 + 1, |a, b| a + b);
            let bufs: Vec<Vec<u8>> = (0..comm.size())
                .map(|d| vec![comm.rank() as u8; d + 1])
                .collect();
            comm.alltoallv(bufs);
            comm.scan(comm.rank() as u64, 8, &|a: &u64, b: &u64| (*a).max(*b));
            (v, comm.now())
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn collective_io_virtual_times_are_identical_across_runs() {
    let run = || {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs
            .create("d.bin", Some(StripeSpec::new(8, 64 << 10)))
            .unwrap();
        f.append(vec![9u8; 1 << 20]);
        World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let file = MpiFile::open(&fs, "d.bin", Hints::default()).unwrap();
            let chunk = (1usize << 20) / 4;
            let mut buf = vec![0u8; chunk];
            file.read_at_all(comm, (comm.rank() * chunk) as u64, &mut buf)
                .unwrap();
            comm.now()
        })
    };
    assert_eq!(run(), run());
}

#[test]
fn virtual_time_is_independent_of_wall_time() {
    // Injecting real delays must not change virtual results: the model
    // never reads the wall clock.
    let run = |sleep: bool| {
        World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            if sleep && comm.rank() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            comm.charge(Work::Seconds(0.5));
            comm.barrier();
            comm.now()
        })
    };
    assert_eq!(run(false), run(true));
}
