//! Property-based tests of the decomposition/exchange layer: conservation
//! of features through arbitrary exchanges, decomposition policies,
//! windows and rank counts.

use mpi_vector_io::core::decomp::{
    AdaptiveBisection, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mpi_vector_io::core::exchange::{
    exchange_features, exchange_serialized_with, ExchangeChunk, ExchangeOptions,
};
use mpi_vector_io::core::pipeline::{partition_chunked, partition_exchange_overlapped};
use mpi_vector_io::prelude::*;
use proptest::prelude::*;

/// Builds one of the five decomposition variants over a `side × side`
/// grid: the three classic cell maps, Hilbert runs, and an adaptive
/// bisection over a deterministic synthetic histogram.
fn mk_decomp(policy: u8, side: u32, ranks: usize) -> Box<dyn SpatialDecomposition> {
    let grid = UniformGrid::new(
        Rect::new(0.0, 0.0, side as f64, side as f64),
        GridSpec::square(side),
    );
    match policy {
        0 => Box::new(UniformDecomposition::new(grid, CellMap::RoundRobin, ranks)),
        1 => Box::new(UniformDecomposition::new(grid, CellMap::Block, ranks)),
        2 => Box::new(UniformDecomposition::new(
            grid,
            CellMap::Hilbert { cells_x: side },
            ranks,
        )),
        3 => Box::new(HilbertDecomposition::new(grid, ranks)),
        _ => {
            let counts: Vec<u64> = (0..grid.num_cells() as u64).map(|c| (c * 7) % 13).collect();
            Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks))
        }
    }
}

proptest! {
    // Worlds spawn threads; keep case counts moderate. Seed pinned so
    // CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x6d76_696f_6578_6368))]

    #[test]
    fn exchange_conserves_every_pair(
        ranks in 1usize..5,
        side in 1u32..6,
        windows in 1u32..4,
        policy in 0u8..5,
        items_per_rank in 0usize..30,
    ) {
        let num_cells = side * side;
        let out = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                let decomp = mk_decomp(policy, side, comm.size());
                // Each rank fabricates pairs tagged with origin info.
                let pairs: Vec<(u32, Feature)> = (0..items_per_rank)
                    .map(|i| {
                        let cell = ((comm.rank() * 31 + i * 7) as u32) % num_cells;
                        let f = Feature::with_userdata(
                            Geometry::Point(Point::new(i as f64, comm.rank() as f64)),
                            format!("r{}i{}", comm.rank(), i),
                        );
                        (cell, f)
                    })
                    .collect();
                let opts = ExchangeOptions {
                    windows,
                    ..Default::default()
                };
                let (mine, stats) = exchange_features(comm, pairs, &*decomp, &opts).unwrap();
                // Ownership: every received pair belongs to me.
                for (cell, _) in &mine {
                    assert_eq!(decomp.cell_to_rank(*cell), comm.rank());
                }
                let tags: Vec<String> =
                    mine.iter().map(|(c, f)| format!("{c}:{}", f.userdata)).collect();
                (tags, stats.records_sent, stats.records_received)
            },
        );
        // Global conservation: the multiset of (cell, origin) tags equals
        // what was fabricated.
        let mut got: Vec<String> = out.iter().flat_map(|(t, _, _)| t.clone()).collect();
        got.sort();
        let mut expect: Vec<String> = (0..ranks)
            .flat_map(|r| {
                (0..items_per_rank).map(move |i| {
                    let cell = ((r * 31 + i * 7) as u32) % num_cells;
                    format!("{cell}:r{r}i{i}")
                })
            })
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
        // Sent == received globally.
        let sent: u64 = out.iter().map(|(_, s, _)| s).sum();
        let recv: u64 = out.iter().map(|(_, _, r)| r).sum();
        prop_assert_eq!(sent, recv);
    }

    #[test]
    fn projection_covers_envelope_for_arbitrary_rects(
        side in 1u32..8,
        rects in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..30.0, 0.1f64..30.0),
            1..40
        ),
    ) {
        let grid = UniformGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), GridSpec::square(side));
        for (x, y, w, h) in rects {
            let r = Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0));
            let cells = grid.cells_overlapping(&r);
            prop_assert!(!cells.is_empty(), "in-bounds rect must map somewhere");
            // Union of mapped cells covers the rect.
            let union = cells
                .iter()
                .fold(Rect::EMPTY, |a, &c| a.union(&grid.cell_rect(c)));
            prop_assert!(union.contains(&r), "cells {cells:?} must cover {r:?}");
            // And every mapped cell genuinely intersects the rect.
            for &c in &cells {
                prop_assert!(grid.cell_rect(c).intersects(&r));
            }
        }
    }

    /// The PR's oracle: for arbitrary chunk sizes, windows and
    /// decomposition policies, the chunked overlapped exchange returns
    /// exactly — bit for bit, order included — what the single-round
    /// blocking protocol returns.
    #[test]
    fn chunked_exchange_is_bit_identical_to_blocking(
        ranks in 1usize..5,
        side in 1u32..6,
        windows in 1u32..3,
        policy in 0u8..5,
        chunk in prop_oneof![1u64..48, 48u64..4096],
        items_per_rank in 0usize..30,
    ) {
        let num_cells = side * side;
        let run = |chunk: ExchangeChunk| {
            World::run(
                WorldConfig::new(Topology::single_node(ranks)),
                move |comm| {
                    let decomp = mk_decomp(policy, side, comm.size());
                    let pairs: Vec<(u32, Feature)> = (0..items_per_rank)
                        .map(|i| {
                            let cell = ((comm.rank() * 31 + i * 7) as u32) % num_cells;
                            let f = Feature::with_userdata(
                                Geometry::Point(Point::new(i as f64, comm.rank() as f64)),
                                format!("r{}i{}", comm.rank(), i),
                            );
                            (cell, f)
                        })
                        .collect();
                    let opts = ExchangeOptions { windows, chunk };
                    exchange_features(comm, pairs, &*decomp, &opts).unwrap().0
                },
            )
        };
        let blocking = run(ExchangeChunk::Unlimited);
        let chunked = run(ExchangeChunk::Bytes(chunk));
        prop_assert_eq!(chunked, blocking);
    }

    /// Same oracle for the fused partition+exchange overlap path: the
    /// owned pairs match the unfused serialize-everything-then-block
    /// pipeline for any chunk size, worker count and policy.
    #[test]
    fn overlapped_partition_exchange_matches_unfused(
        ranks in 1usize..4,
        side in 2u32..6,
        policy in 0u8..5,
        workers in 1usize..5,
        chunk in prop_oneof![1u64..64, 64u64..8192],
        features_per_rank in 0usize..25,
    ) {
        let mk_features = |rank: usize| -> Vec<Feature> {
            (0..features_per_rank)
                .map(|i| {
                    let x = ((rank * 17 + i * 3) % (side as usize * 10)) as f64 / 10.0;
                    let y = ((rank * 5 + i * 11) % (side as usize * 10)) as f64 / 10.0;
                    Feature::with_userdata(
                        Geometry::Point(Point::new(x, y)),
                        format!("r{rank}f{i}"),
                    )
                })
                .collect()
        };
        let popts = PipelineOptions::default()
            .with_workers(workers)
            .with_partition_chunk_records(7);
        let unfused = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                let decomp = mk_decomp(policy, side, comm.size());
                let feats = mk_features(comm.rank());
                let (batch, _) = partition_chunked(comm, &*decomp, &feats, &popts).unwrap();
                exchange_serialized_with(
                    comm,
                    batch,
                    &ExchangeOptions::with_chunk(ExchangeChunk::Unlimited),
                )
                .unwrap()
                .0
            },
        );
        let fused = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                let decomp = mk_decomp(policy, side, comm.size());
                let feats = mk_features(comm.rank());
                partition_exchange_overlapped(comm, &*decomp, &feats, &popts, chunk)
                    .unwrap()
                    .0
            },
        );
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn every_decomposition_partitions_cells(
        side in 1u32..9,
        ranks in 1usize..9,
        policy in 0u8..5,
    ) {
        let decomp = mk_decomp(policy, side, ranks);
        let mut seen = vec![0u32; decomp.num_cells() as usize];
        for rank in 0..ranks {
            for c in decomp.cells_of_rank(rank) {
                seen[c as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1), "{decomp:?}: {seen:?}");
    }
}
