//! Property-based tests over the geometry engine: serialization round
//! trips, rectangle algebra, and index-vs-brute-force equivalence.

use mpi_vector_io::geom::algo::{point_in_polygon, segments_intersect, PointLocation};
use mpi_vector_io::geom::index::{QuadTree, RTree};
use mpi_vector_io::geom::{wkb, wkt, Geometry, LineString, Point, Polygon, Rect};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    // Geographic-ish magnitudes, quantized to avoid pathological
    // shortest-representation blowups in WKT text.
    (-1_800_000i32..1_800_000).prop_map(|v| v as f64 / 10_000.0)
}

fn arb_point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_linestring() -> impl Strategy<Value = LineString> {
    proptest::collection::vec(arb_point(), 2..20)
        .prop_filter_map("valid linestring", |pts| LineString::new(pts).ok())
}

fn arb_polygon() -> impl Strategy<Value = Polygon> {
    // Star-shaped construction guarantees validity for arbitrary inputs.
    (arb_point(), 3usize..24, 1u64..u64::MAX).prop_map(|(center, k, seed)| {
        let mut pts = Vec::with_capacity(k + 1);
        let mut s = seed;
        for i in 0..k {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = 0.1 + (s >> 33) as f64 / u32::MAX as f64 * 5.0;
            let a = i as f64 / k as f64 * std::f64::consts::TAU;
            pts.push(Point::new(center.x + r * a.cos(), center.y + r * a.sin()));
        }
        pts.push(pts[0]);
        Polygon::from_coords(pts, vec![]).expect("star polygon valid")
    })
}

fn arb_geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_point().prop_map(Geometry::Point),
        arb_linestring().prop_map(Geometry::LineString),
        arb_polygon().prop_map(Geometry::Polygon),
        proptest::collection::vec(arb_point(), 0..8)
            .prop_map(|v| Geometry::MultiPoint(mpi_vector_io::geom::MultiPoint(v))),
        proptest::collection::vec(arb_polygon(), 1..4)
            .prop_map(|v| Geometry::MultiPolygon(mpi_vector_io::geom::MultiPolygon(v))),
    ]
}

fn arb_polygon_holed() -> impl Strategy<Value = Polygon> {
    // Exterior star plus an interior ring scaled toward the center, so
    // the oracle covers multi-ring polygon bodies.
    (arb_point(), 4usize..12, 1u64..u64::MAX).prop_map(|(center, k, seed)| {
        let mut outer = Vec::with_capacity(k + 1);
        let mut s = seed;
        for i in 0..k {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = 1.0 + (s >> 33) as f64 / u32::MAX as f64 * 5.0;
            let a = i as f64 / k as f64 * std::f64::consts::TAU;
            outer.push(Point::new(center.x + r * a.cos(), center.y + r * a.sin()));
        }
        outer.push(outer[0]);
        let hole: Vec<Point> = outer
            .iter()
            .map(|p| {
                Point::new(
                    center.x + (p.x - center.x) * 0.25,
                    center.y + (p.y - center.y) * 0.25,
                )
            })
            .collect();
        Polygon::from_coords(outer, vec![hole]).expect("holed star polygon valid")
    })
}

/// Every WKB variant the codec knows: the five shapes above plus
/// multi-linestrings, holed polygons, and (possibly empty, possibly
/// nested) heterogeneous collections.
fn arb_geometry_full() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        arb_geometry(),
        arb_polygon_holed().prop_map(Geometry::Polygon),
        proptest::collection::vec(arb_linestring(), 1..4)
            .prop_map(|v| Geometry::MultiLineString(mpi_vector_io::geom::MultiLineString(v))),
        proptest::collection::vec(arb_geometry(), 0..4).prop_map(|v| {
            Geometry::GeometryCollection(mpi_vector_io::geom::GeometryCollection(v))
        }),
    ]
}

proptest! {
    // Seed pinned so CI failures are reproducible; override with
    // PROPTEST_SEED to explore a different stream.
    #![proptest_config(ProptestConfig::with_cases(256).with_seed(0x6d76_696f_6765_6f6d))]

    #[test]
    fn wkt_round_trips_exactly(g in arb_geometry()) {
        let text = wkt::write(&g);
        let back = wkt::parse(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn wkb_round_trips_exactly(g in arb_geometry()) {
        let bytes = wkb::encode(&g);
        let (back, used) = wkb::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, g);
    }

    #[test]
    fn wkb_never_panics_on_corruption(g in arb_geometry(), cut in 0usize..64, flip in 0usize..64) {
        let mut bytes = wkb::encode(&g);
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= 0xA5;
        }
        // Must return Ok or Err, never panic or loop.
        let _ = wkb::decode(&bytes);
    }

    // ---- decode_ref ≡ decode oracle -------------------------------
    //
    // The zero-copy borrowed decoder must be observationally identical
    // to the owned decoder: same acceptance set, same rejection set
    // with the same diagnostics, and views that materialize, measure,
    // and bound exactly like the owned geometry.

    #[test]
    fn decode_ref_matches_decode(g in arb_geometry_full()) {
        let bytes = wkb::encode(&g);
        let (owned, used_o) = wkb::decode(&bytes).unwrap();
        let (view, used_r) = wkb::decode_ref(&bytes).unwrap();
        prop_assert_eq!(used_o, bytes.len());
        prop_assert_eq!(used_r, bytes.len());
        prop_assert_eq!(view.geometry_type(), owned.geometry_type());
        prop_assert_eq!(view.num_points(), owned.num_points());
        prop_assert_eq!(view.envelope(), owned.envelope());
        prop_assert_eq!(view.to_geometry(), owned.clone());
        prop_assert_eq!(owned, g);
    }

    #[test]
    fn decode_ref_truncation_parity_at_every_cut(g in arb_geometry_full()) {
        let bytes = wkb::encode(&g);
        for cut in 0..bytes.len() {
            let owned = wkb::decode(&bytes[..cut]);
            let view = wkb::decode_ref(&bytes[..cut]);
            match (owned, view) {
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (Ok((og, ou)), Ok((vg, vu))) => {
                    prop_assert_eq!(ou, vu);
                    prop_assert_eq!(og, vg.to_geometry());
                }
                (a, b) => prop_assert!(
                    false,
                    "cut {} disagreement: owned ok={} view ok={}",
                    cut,
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    #[test]
    fn decode_ref_agrees_with_decode_on_corruption(
        g in arb_geometry_full(),
        cut in 0usize..64,
        flip in 0usize..64,
    ) {
        let mut bytes = wkb::encode(&g);
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        if !bytes.is_empty() {
            let idx = flip % bytes.len();
            bytes[idx] ^= 0xA5;
        }
        match (wkb::decode(&bytes), wkb::decode_ref(&bytes)) {
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (Ok((og, ou)), Ok((vg, vu))) => {
                prop_assert_eq!(ou, vu);
                prop_assert_eq!(og, vg.to_geometry());
            }
            (a, b) => prop_assert!(
                false,
                "corruption disagreement: owned ok={} view ok={}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }

    #[test]
    fn decode_ref_walks_concatenated_streams(
        gs in proptest::collection::vec(arb_geometry_full(), 1..6),
    ) {
        let mut buf = Vec::new();
        for g in &gs {
            buf.extend_from_slice(&wkb::encode(g));
        }
        let mut pos = 0;
        for g in &gs {
            let (owned, used_o) = wkb::decode(&buf[pos..]).unwrap();
            let (view, used_r) = wkb::decode_ref(&buf[pos..]).unwrap();
            prop_assert_eq!(used_o, used_r);
            prop_assert_eq!(&view.to_geometry(), &owned);
            prop_assert_eq!(&owned, g);
            prop_assert_eq!(view.envelope(), g.envelope());
            prop_assert_eq!(view.num_points(), g.num_points());
            pos += used_o;
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn union_is_commutative_associative_and_covering(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        let u = a.union(&b);
        prop_assert!(u.contains(&a) && u.contains(&b));
        prop_assert_eq!(a.union(&Rect::EMPTY), a);
    }

    #[test]
    fn intersection_is_contained_and_symmetric(a in arb_rect(), b in arb_rect()) {
        let i = a.intersection(&b);
        prop_assert_eq!(i, b.intersection(&a));
        if !i.is_empty() {
            prop_assert!(a.contains(&i) && b.contains(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b) || a.is_empty() || b.is_empty());
        }
    }

    #[test]
    fn envelope_contains_every_vertex(g in arb_geometry()) {
        let env = g.envelope();
        match &g {
            Geometry::LineString(l) => {
                for p in l.points() {
                    prop_assert!(env.contains_point(p));
                }
            }
            Geometry::Polygon(p) => {
                for q in p.exterior().points() {
                    prop_assert!(env.contains_point(q));
                }
            }
            Geometry::Point(p) => prop_assert!(env.contains_point(p)),
            _ => {}
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        prop_assert_eq!(
            segments_intersect(a, b, c, d),
            segments_intersect(c, d, a, b)
        );
        // A segment always intersects itself.
        prop_assert!(segments_intersect(a, b, a, b));
    }

    #[test]
    fn polygon_vertices_are_on_boundary(poly in arb_polygon()) {
        for &v in poly.exterior().points() {
            prop_assert_eq!(point_in_polygon(v, &poly), PointLocation::OnBoundary);
        }
    }

    #[test]
    fn polygon_centroid_of_star_is_inside(poly in arb_polygon()) {
        // The construction is star-shaped around its generation center,
        // whose nearest proxy is the envelope center — not guaranteed
        // inside for all stars, so test the weaker invariant: a point
        // reported Inside is also inside the envelope.
        let c = poly.envelope().center();
        if point_in_polygon(c, &poly) == PointLocation::Inside {
            prop_assert!(poly.envelope().contains_point(&c));
        }
    }

    #[test]
    fn rtree_matches_brute_force(
        items in proptest::collection::vec(arb_rect(), 1..150),
        probe in arb_rect(),
    ) {
        let keyed: Vec<(Rect, usize)> =
            items.iter().cloned().zip(0usize..).collect();
        let tree = RTree::bulk_load(keyed.clone());
        let mut expect: Vec<usize> = keyed
            .iter()
            .filter(|(r, _)| r.intersects(&probe))
            .map(|&(_, i)| i)
            .collect();
        let mut got: Vec<usize> = tree.query(&probe).into_iter().copied().collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rtree_insert_matches_bulk_load_semantics(
        items in proptest::collection::vec(arb_rect(), 1..80),
        probe in arb_rect(),
    ) {
        let bulk = RTree::bulk_load(items.iter().cloned().zip(0usize..).collect());
        let mut inc = RTree::new();
        for (i, r) in items.iter().enumerate() {
            inc.insert(*r, i);
        }
        let mut a: Vec<usize> = bulk.query(&probe).into_iter().copied().collect();
        let mut b: Vec<usize> = inc.query(&probe).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn quadtree_matches_brute_force(
        items in proptest::collection::vec(arb_rect(), 1..100),
        probe in arb_rect(),
    ) {
        let bounds = items.iter().fold(Rect::EMPTY, |a, r| a.union(r));
        prop_assume!(!bounds.is_empty());
        let bounds = bounds.buffered(1.0);
        let mut qt = QuadTree::new(bounds);
        for (i, r) in items.iter().enumerate() {
            qt.insert(*r, i);
        }
        let mut expect: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&probe))
            .map(|(i, _)| i)
            .collect();
        let mut got: Vec<usize> = qt.query(&probe).into_iter().copied().collect();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn intersects_implies_envelope_overlap(a in arb_geometry(), b in arb_geometry()) {
        if mpi_vector_io::geom::algo::intersects(&a, &b) {
            prop_assert!(a.envelope().intersects(&b.envelope()));
        }
    }

    #[test]
    fn intersects_is_symmetric(a in arb_geometry(), b in arb_geometry()) {
        prop_assert_eq!(
            mpi_vector_io::geom::algo::intersects(&a, &b),
            mpi_vector_io::geom::algo::intersects(&b, &a)
        );
    }
}
