//! Cross-crate integration tests: the full catalog → partition → grid →
//! exchange → join/index/query pipeline, validated against brute force.

use mpi_vector_io::core::exchange::{exchange_features, ExchangeOptions};
use mpi_vector_io::core::grid::{CellMap, GridSpec, UniformGrid};
use mpi_vector_io::datagen;
use mpi_vector_io::prelude::*;
use std::sync::Arc;

/// Generates a small catalog pair onto one filesystem.
fn catalog_fs(denom: u64) -> Arc<SimFs> {
    let fs = SimFs::new(FsConfig::gpfs_roger());
    for name in ["Lakes", "Cemetery"] {
        let spec = datagen::table3()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap();
        let rep = datagen::catalog::generate(&fs, &spec, denom, 7);
        // Normalize to simple paths for the tests below.
        let bytes = fs.open(&rep.path).unwrap().snapshot();
        fs.create(&format!("{}.wkt", name.to_lowercase()), None)
            .unwrap()
            .append(&bytes);
    }
    fs
}

/// Brute-force join of two WKT datasets (exact `intersects`).
fn brute_force_join(fs: &Arc<SimFs>, a: &str, b: &str) -> Vec<(String, String)> {
    let parse = |path: &str| -> Vec<Feature> {
        let text = String::from_utf8(fs.open(path).unwrap().snapshot()).unwrap();
        mpi_vector_io::core::reader::parse_buffer_serial(&text, &WktLineParser).unwrap()
    };
    let la = parse(a);
    let lb = parse(b);
    let mut out = Vec::new();
    for fa in &la {
        for fb in &lb {
            if mpi_vector_io::geom::algo::intersects(&fa.geometry, &fb.geometry) {
                out.push((fa.userdata.clone(), fb.userdata.clone()));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn distributed_join_matches_brute_force_on_catalog_data() {
    let denom = 50_000; // Lakes 160, Cemetery 16 — brute force affordable
    let fs = catalog_fs(denom);
    let expect = brute_force_join(&fs, "lakes.wkt", "cemetery.wkt");

    for (nodes, ppn, cells) in [(1, 1, 4u32), (2, 2, 8), (2, 3, 16)] {
        let fs = Arc::clone(&fs);
        let topo = Topology::new(nodes, ppn);
        let out = World::run(WorldConfig::new(topo), move |comm| {
            let opts = JoinOptions {
                grid: GridSpec::square(cells),
                read: ReadOptions::default().with_block_size(256 << 10),
                ..Default::default()
            };
            spatial_join(comm, &fs, "lakes.wkt", "cemetery.wkt", &opts).unwrap()
        });
        let mut pairs: Vec<(String, String)> = out.iter().flat_map(|r| r.pairs.clone()).collect();
        pairs.sort();
        assert_eq!(
            pairs, expect,
            "join must equal brute force at {nodes}x{ppn} ranks, {cells}x{cells} cells"
        );
    }
}

#[test]
fn exchange_preserves_every_feature_with_real_data() {
    let denom = 100_000;
    let fs = catalog_fs(denom);
    let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
        let feats = read_features(
            comm,
            &fs,
            "lakes.wkt",
            &ReadOptions::default().with_block_size(128 << 10),
            &WktLineParser,
        )
        .unwrap();
        let decomp = mpi_vector_io::core::decomp::build_global(
            comm,
            &[&feats],
            &mpi_vector_io::core::decomp::DecompConfig::uniform(GridSpec::square(8)),
        );
        let rtree = mpi_vector_io::core::decomp::build_cell_rtree(comm, &*decomp);
        let pairs = mpi_vector_io::core::decomp::project_to_cells(comm, &rtree, &feats);
        let owned: Vec<(u32, Feature)> = pairs
            .into_iter()
            .map(|(c, i)| (c, feats[i].clone()))
            .collect();
        let sent = owned.len() as u64;
        let (mine, stats) =
            exchange_features(comm, owned, &*decomp, &ExchangeOptions::default()).unwrap();
        // Every received pair belongs to a cell this rank owns.
        for (cell, _) in &mine {
            assert_eq!(decomp.cell_to_rank(*cell), comm.rank());
        }
        let total_sent = comm.allreduce_u64(sent, |a, b| a + b);
        let total_recv = comm.allreduce_u64(stats.records_received, |a, b| a + b);
        assert_eq!(
            total_sent, total_recv,
            "no pair lost or duplicated in flight"
        );
        mine.len()
    });
    assert!(out.iter().sum::<usize>() > 0);
}

#[test]
fn range_query_matches_serial_filter() {
    let denom = 100_000;
    let fs = catalog_fs(denom);
    let query = {
        // Use the densest region: the global MBR's middle third.
        let text = String::from_utf8(fs.open("lakes.wkt").unwrap().snapshot()).unwrap();
        let feats =
            mpi_vector_io::core::reader::parse_buffer_serial(&text, &WktLineParser).unwrap();
        let mbr = feats
            .iter()
            .fold(Rect::EMPTY, |a, f| a.union(&f.geometry.envelope()));
        Rect::new(
            mbr.min_x + mbr.width() * 0.2,
            mbr.min_y + mbr.height() * 0.2,
            mbr.max_x - mbr.width() * 0.2,
            mbr.max_y - mbr.height() * 0.2,
        )
    };

    // Serial ground truth with the exact predicate.
    let text = String::from_utf8(fs.open("lakes.wkt").unwrap().snapshot()).unwrap();
    let feats = mpi_vector_io::core::reader::parse_buffer_serial(&text, &WktLineParser).unwrap();
    let expect: u64 = feats
        .iter()
        .filter(|f| mpi_vector_io::geom::algo::rect_intersects_geometry(&query, &f.geometry))
        .count() as u64;

    let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
        range_query(
            comm,
            &fs,
            "lakes.wkt",
            query,
            GridSpec::square(8),
            &ReadOptions::default().with_block_size(128 << 10),
        )
        .unwrap()
        .total_matches
    });
    assert!(
        out.iter().all(|&n| n == expect),
        "got {out:?}, want {expect}"
    );
}

#[test]
fn distributed_index_preserves_feature_multiset() {
    let denom = 100_000;
    let fs = catalog_fs(denom);
    // Serial: project features to cells and count replicas.
    let text = String::from_utf8(fs.open("lakes.wkt").unwrap().snapshot()).unwrap();
    let feats = mpi_vector_io::core::reader::parse_buffer_serial(&text, &WktLineParser).unwrap();
    let mbr = feats
        .iter()
        .fold(Rect::EMPTY, |a, f| a.union(&f.geometry.envelope()));
    let grid = UniformGrid::new(mbr, GridSpec::square(8));
    let expect: u64 = feats
        .iter()
        .map(|f| grid.cells_overlapping(&f.geometry.envelope()).len() as u64)
        .sum();

    let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
        build_distributed_index(
            comm,
            &fs,
            "lakes.wkt",
            GridSpec::square(8),
            mpi_vector_io::core::decomp::DecompPolicy::Uniform(CellMap::RoundRobin),
            &ReadOptions::default().with_block_size(128 << 10),
        )
        .unwrap()
        .indexed
    });
    let total: u64 = out.iter().sum();
    assert_eq!(
        total, expect,
        "cell-replicated feature count must match serial projection"
    );
}

#[test]
fn full_pipeline_runs_on_every_catalog_dataset() {
    // Smoke the reader across all six Table 3 datasets at micro scale.
    let fs = SimFs::new(FsConfig::gpfs_roger());
    for spec in datagen::table3() {
        let rep = datagen::catalog::generate(&fs, &spec, 5_000_000, 3);
        let fs = Arc::clone(&fs);
        let path = rep.path.clone();
        let out = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            let feats = read_features(
                comm,
                &fs,
                &path,
                &ReadOptions::default().with_block_size(64 << 10),
                &WktLineParser,
            )
            .unwrap();
            comm.allreduce_u64(feats.len() as u64, |a, b| a + b)
        });
        assert_eq!(out[0], rep.count, "dataset {} round-trips", spec.name);
    }
}
