//! Coverage check for `docs/KNOBS.md`: every `MVIO_*` environment knob
//! referenced anywhere in the workspace's crate sources must have a row
//! in the knob table. Adding a knob without documenting it fails here.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Extracts every `MVIO_[A-Z0-9_]+` identifier from `text`.
fn knob_idents(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut at = 0;
    while let Some(pos) = text[at..].find("MVIO_") {
        let start = at + pos;
        let mut end = start + "MVIO_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        // A bare "MVIO_" prefix with no knob name is not an identifier.
        if end > start + "MVIO_".len() {
            out.insert(text[start..end].trim_end_matches('_').to_string());
        }
        at = end;
    }
    out
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_env_knob_in_the_workspace_is_documented() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let crates = root.join("crates");
    assert!(crates.is_dir(), "expected {} to exist", crates.display());

    let mut sources = Vec::new();
    let crate_dirs = fs::read_dir(&crates).expect("readable crates dir");
    for entry in crate_dirs.flatten() {
        let src = entry.path().join("src");
        rust_sources_under(&src, &mut sources);
    }
    assert!(
        sources.len() > 10,
        "suspiciously few sources found ({}) — did the layout move?",
        sources.len()
    );

    let mut used = BTreeSet::new();
    for path in &sources {
        let text = fs::read_to_string(path).expect("readable source file");
        used.extend(knob_idents(&text));
    }
    assert!(
        used.contains("MVIO_CHECK") && used.contains("MVIO_DECOMP"),
        "knob scan is broken: known knobs not found in {used:?}"
    );

    let knobs_md = root.join("docs").join("KNOBS.md");
    let documented = knob_idents(&fs::read_to_string(&knobs_md).expect("readable docs/KNOBS.md"));

    let missing: Vec<&String> = used.difference(&documented).collect();
    assert!(
        missing.is_empty(),
        "env knobs referenced in crate sources but missing from docs/KNOBS.md: {missing:?}"
    );

    // The reverse direction matters too: a documented knob that no code
    // reads is a stale row.
    let stale: Vec<&String> = documented.difference(&used).collect();
    assert!(
        stale.is_empty(),
        "docs/KNOBS.md documents knobs that no crate source references: {stale:?}"
    );
}

#[test]
fn knob_ident_extraction_handles_word_boundaries() {
    let set = knob_idents("reads MVIO_FOO_BAR, then `MVIO_BAZ=1`; ignores MVIO_ alone");
    assert_eq!(
        set.into_iter().collect::<Vec<_>>(),
        vec!["MVIO_BAZ".to_string(), "MVIO_FOO_BAR".to_string()]
    );
}
