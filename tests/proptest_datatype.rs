//! Property-based tests of the derived-datatype machinery: fragment
//! geometry invariants and pack/unpack round trips for arbitrary nested
//! layouts.

use mpi_vector_io::msim::Datatype;
use proptest::prelude::*;

/// Strategy producing arbitrary (valid) nested datatypes of bounded depth.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(Datatype::Byte),
        Just(Datatype::Int32),
        Just(Datatype::Int64),
        Just(Datatype::Double),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            // Contiguous
            (1usize..5, inner.clone()).prop_map(|(n, t)| Datatype::contiguous(n, t)),
            // Vector with stride >= blocklen (validated form)
            (1usize..4, 1usize..4, 0usize..4, inner.clone())
                .prop_map(|(count, bl, extra, t)| { Datatype::vector(count, bl, bl + extra, t) }),
            // Indexed with strictly increasing, non-overlapping blocks
            (
                proptest::collection::vec((1usize..4, 0usize..4), 1..4),
                inner.clone()
            )
                .prop_map(|(blocks, t)| {
                    let mut displs = Vec::new();
                    let mut lens = Vec::new();
                    let mut at = 0usize;
                    for (len, gap) in blocks {
                        at += gap;
                        displs.push(at);
                        lens.push(len);
                        at += len;
                    }
                    Datatype::indexed(lens, displs, t)
                }),
            // Resized with extent >= inner extent
            (inner, 0usize..16).prop_map(|(t, pad)| {
                let e = t.extent() + pad;
                Datatype::resized(t, e)
            }),
        ]
    })
}

proptest! {
    // Seed pinned so CI failures are reproducible; override with
    // PROPTEST_SEED to explore a different stream.
    #![proptest_config(ProptestConfig::with_cases(256).with_seed(0x6d76_696f_6474_7970))]

    #[test]
    fn generated_datatypes_validate(dt in arb_datatype()) {
        prop_assert!(dt.validate().is_ok(), "{dt:?}");
    }

    #[test]
    fn fragments_are_sorted_disjoint_and_sum_to_size(dt in arb_datatype()) {
        let frags = dt.fragments();
        let total: usize = frags.iter().map(|f| f.1).sum();
        prop_assert_eq!(total, dt.size(), "{:?}", dt);
        for w in frags.windows(2) {
            prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap in {:?}: {:?}", dt, frags);
        }
        if let Some(&(off, len)) = frags.last() {
            prop_assert!(off + len <= dt.extent(), "{:?} runs past extent", dt);
        }
        // No empty fragments.
        prop_assert!(frags.iter().all(|f| f.1 > 0));
    }

    #[test]
    fn size_never_exceeds_extent(dt in arb_datatype()) {
        prop_assert!(dt.size() <= dt.extent(), "{dt:?}");
        prop_assert_eq!(dt.is_dense(), dt.size() == dt.extent());
    }

    #[test]
    fn pack_unpack_round_trips(dt in arb_datatype(), seed in any::<u64>()) {
        let extent = dt.extent().max(1);
        // Deterministic pseudo-random source buffer.
        let src: Vec<u8> = (0..extent)
            .map(|i| (seed.wrapping_mul(i as u64 + 1).wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let packed = dt.pack(&src);
        prop_assert_eq!(packed.len(), dt.size());

        let mut dst = vec![0u8; extent];
        dt.unpack(&packed, &mut dst);
        // Every payload byte must round-trip; gap bytes stay zero.
        for (off, len) in dt.fragments() {
            prop_assert_eq!(&dst[off..off + len], &src[off..off + len]);
        }
        // Re-packing the unpacked buffer reproduces the packed image.
        prop_assert_eq!(dt.pack(&dst), packed);
    }

    #[test]
    fn contiguous_of_n_scales_size_linearly(dt in arb_datatype(), n in 1usize..6) {
        let c = Datatype::contiguous(n, dt.clone());
        prop_assert_eq!(c.size(), n * dt.size());
        prop_assert_eq!(c.extent(), n * dt.extent());
    }
}
