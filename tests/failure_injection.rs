//! Failure injection: corrupted inputs and failing ranks must produce
//! clean errors (or a clean job abort) — never hangs, never silent
//! corruption.

use mpi_vector_io::core::CoreError;
use mpi_vector_io::prelude::*;
use std::sync::Arc;

fn fs_with(path: &str, text: &str) -> Arc<SimFs> {
    let fs = SimFs::new(FsConfig::gpfs_roger());
    fs.create(path, None).unwrap().append(text.as_bytes());
    fs
}

#[test]
fn corrupted_wkt_record_fails_cleanly_on_every_rank() {
    // A malformed record in the middle of an otherwise fine file: the
    // rank that owns it reports a Parse error naming the record; other
    // ranks parse their shares fine. No rank hangs.
    let mut text = String::new();
    for i in 0..40 {
        if i == 17 {
            text.push_str("POLYGON ((botched\n");
        } else {
            text.push_str(&format!("POINT ({i} {i})\tp{i}\n"));
        }
    }
    let fs = fs_with("bad.wkt", &text);
    let results = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
        read_features(
            comm,
            &fs,
            "bad.wkt",
            &ReadOptions::default().with_block_size(128),
            &WktLineParser,
        )
        .map(|v| v.len())
        .map_err(|e| e.to_string())
    });
    let errs: Vec<&String> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(
        errs.len(),
        1,
        "exactly one rank owns the bad record: {results:?}"
    );
    assert!(errs[0].contains("parse error"), "{}", errs[0]);
    assert!(
        errs[0].contains("botched"),
        "error names the record: {}",
        errs[0]
    );
    // Other ranks deliver their clean shares; the failing rank's share
    // (including its good records) is reported through its error.
    let parsed: usize = results
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .sum();
    assert!(
        (1..=39).contains(&parsed),
        "clean shares delivered: {parsed}"
    );
}

#[test]
fn rank_death_mid_pipeline_aborts_whole_job() {
    // A rank panics between the exchange rounds; the rest are blocked in
    // collectives. MPI_Abort semantics must bring the job down rather
    // than deadlock.
    let fs = fs_with(
        "ok.wkt",
        &(0..32)
            .map(|i| format!("POINT ({i} 0)\tp{i}\n"))
            .collect::<String>(),
    );
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let feats = read_features(
                comm,
                &fs,
                "ok.wkt",
                &ReadOptions::default().with_block_size(1024),
                &WktLineParser,
            )
            .unwrap();
            if comm.rank() == 2 {
                panic!("injected rank death");
            }
            // Survivors head into a collective that can never complete.
            comm.allreduce_u64(feats.len() as u64, |a, b| a + b)
        })
    }));
    let payload = result.expect_err("job must abort");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("injected rank death"),
        "originating panic surfaces: {msg}"
    );
}

#[test]
fn truncated_file_yields_short_final_record_not_a_crash() {
    // A file cut mid-record (e.g. interrupted transfer): the partial tail
    // is delivered as a record and fails at *parse* time with a clear
    // error, rather than corrupting neighbours.
    let full = "POINT (1 1)\tp1\nPOINT (2 2)\tp2\nPOLYGON ((3 3, 4 3, 4";
    let fs = fs_with("cut.wkt", full);
    let results = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
        read_features(
            comm,
            &fs,
            "cut.wkt",
            &ReadOptions::default(),
            &WktLineParser,
        )
        .map(|v| v.len())
        .map_err(|e| matches!(e, CoreError::Parse { .. }))
    });
    // The rank owning the tail sees a parse error (flagged true); the
    // other delivers its complete points.
    assert!(results.contains(&Err(true)), "{results:?}");
    assert!(
        results.iter().any(|r| matches!(r, Ok(n) if *n >= 1)),
        "{results:?}"
    );
}

#[test]
fn oversized_geometry_is_reported_not_mangled() {
    // One record bigger than both the block and the configured maximum:
    // Algorithm 1 reports a Partition error telling the user which knob
    // to raise.
    let mut text = String::new();
    text.push_str("POINT (0 0)\tsmall\n");
    text.push_str(&format!("LINESTRING ({})\thuge\n", {
        let coords: Vec<String> = (0..4000).map(|i| format!("{i} {i}")).collect();
        coords.join(", ")
    }));
    let fs = fs_with("huge.wkt", &text);
    let results = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
        read_features(
            comm,
            &fs,
            "huge.wkt",
            &ReadOptions::default()
                .with_block_size(512)
                .with_max_geometry_bytes(1024),
            &WktLineParser,
        )
        .map(|_| ())
        .map_err(|e| e.to_string())
    });
    let errs: Vec<&String> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(!errs.is_empty());
    assert!(
        errs.iter()
            .any(|e| e.contains("block_size") || e.contains("max_geometry_bytes")),
        "error guides the user: {errs:?}"
    );
}

#[test]
fn empty_and_whitespace_files_are_harmless() {
    for content in ["", "\n\n\n", "   \n  \n"] {
        let fs = fs_with("empty.wkt", content);
        let results = World::run(WorldConfig::new(Topology::single_node(3)), move |comm| {
            // Block above the longest (whitespace) record, as always.
            let opts = ReadOptions::default().with_block_size(8);
            read_features(comm, &fs, "empty.wkt", &opts, &WktLineParser)
                .unwrap()
                .len()
        });
        assert!(results.iter().all(|&n| n == 0), "content {content:?}");
    }
}

#[test]
fn malformed_queries_are_rejected_symmetrically_and_engine_survives() {
    // NaN rects, inverted rects and k = 0 kNN probes must be rejected
    // with a typed `InvalidOptions` on EVERY rank — the validation
    // allreduce runs before any exchange, so no rank is stranded in a
    // collective — and the engine must keep answering afterwards.
    use mpi_vector_io::core::decomp::{SpatialDecomposition, UniformDecomposition};
    use mpi_vector_io::sjoin::{EngineOptions, Query, QueryAnswer, QueryEngine};

    let bad_batches: Vec<Vec<Query>> = vec![
        vec![Query::Range(Rect::new(f64::NAN, 0.0, 1.0, 1.0))],
        vec![
            Query::Range(Rect::new(0.0, 0.0, 4.0, 4.0)), // fine
            Query::Range(Rect::new(3.0, 3.0, 1.0, 4.0)), // inverted x
        ],
        vec![Query::Point(Point::new(0.0, f64::INFINITY))],
        vec![Query::Knn {
            at: Point::new(2.0, 2.0),
            k: 0,
        }],
    ];
    let n_bad = bad_batches.len();

    let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
        // A 6×6 lattice of labelled points, resident under a uniform
        // round-robin decomposition.
        let grid = UniformGrid::new(Rect::new(0.0, 0.0, 6.0, 6.0), GridSpec::square(3));
        let sd: Box<dyn SpatialDecomposition> = Box::new(UniformDecomposition::new(
            grid,
            CellMap::RoundRobin,
            comm.size(),
        ));
        let mut owned = Vec::new();
        for y in 0..6 {
            for x in 0..6 {
                let p = Point::new(x as f64, y as f64);
                for cell in sd.cells_for_rect_vec(&p.envelope()) {
                    if sd.cell_to_rank(cell) == comm.rank() {
                        owned.push((
                            cell,
                            Feature::with_userdata(Geometry::Point(p), format!("p{x}_{y}")),
                        ));
                    }
                }
            }
        }
        let mut eng = QueryEngine::from_parts(comm, sd, owned, &EngineOptions::default());

        let mut rejections = Vec::new();
        for batch in &bad_batches {
            match eng.serve(comm, batch) {
                Ok(_) => rejections.push(None),
                Err(e) => rejections.push(Some(matches!(e, CoreError::InvalidOptions(_)))),
            }
        }
        // The engine is not poisoned: the next (valid) batch answers.
        let rep = eng
            .serve(comm, &[Query::Range(Rect::new(0.5, 0.5, 2.5, 2.5))])
            .unwrap();
        let survived = match &rep.answers[0] {
            QueryAnswer::Matches(m) => m.clone(),
            _ => unreachable!("range answers with matches"),
        };
        (rejections, survived)
    });

    for (rank, (rejections, survived)) in out.iter().enumerate() {
        assert_eq!(rejections.len(), n_bad);
        for (i, r) in rejections.iter().enumerate() {
            assert_eq!(
                *r,
                Some(true),
                "rank {rank}: bad batch {i} must be InvalidOptions, got {r:?}"
            );
        }
        assert_eq!(
            survived,
            &vec!["p1_1", "p1_2", "p2_1", "p2_2"],
            "rank {rank}: engine unusable after rejected batches"
        );
    }
}
