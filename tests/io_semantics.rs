//! Cross-crate MPI-IO semantics: access-level equivalence, the ROMIO
//! limit, file views, hints, and stats accounting.

use mpi_vector_io::core::sptypes::{encode_rects, RECT_RECORD_BYTES};
use mpi_vector_io::core::views::read_rects_level3;
use mpi_vector_io::msim::io::{select_readers, FileView};
use mpi_vector_io::msim::MsimError;
use mpi_vector_io::prelude::*;
use std::sync::Arc;

fn rect_file(n: u64, stripe: StripeSpec) -> (Arc<SimFs>, Vec<Rect>) {
    let fs = SimFs::new(FsConfig::lustre_comet());
    let rects: Vec<Rect> = (0..n)
        .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0))
        .collect();
    let f = fs.create("rects.bin", Some(stripe)).unwrap();
    f.append(encode_rects(&rects));
    (fs, rects)
}

#[test]
fn all_three_levels_deliver_identical_bytes() {
    let n = 1024u64;
    let (fs, rects) = rect_file(n, StripeSpec::new(4, 4096));
    let expect: Vec<f64> = rects.iter().map(|r| r.min_x).collect();

    for level in ["l0", "l1", "l3"] {
        let fs = Arc::clone(&fs);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let mut f = MpiFile::open(&fs, "rects.bin", Hints::default()).unwrap();
            match level {
                "l0" | "l1" => {
                    let p = comm.size() as u64;
                    let per = n / p;
                    let off = comm.rank() as u64 * per * RECT_RECORD_BYTES as u64;
                    let mut buf = vec![0u8; (per * RECT_RECORD_BYTES as u64) as usize];
                    if level == "l0" {
                        f.read_at(comm, off, &mut buf).unwrap();
                    } else {
                        f.read_at_all(comm, off, &mut buf).unwrap();
                    }
                    mpi_vector_io::core::sptypes::decode_rects(&buf)
                }
                _ => read_rects_level3(comm, &mut f, n, 64).unwrap(),
            }
        });
        let mut got: Vec<f64> = out.iter().flatten().map(|r| r.min_x).collect();
        got.sort_by(f64::total_cmp);
        let mut want = expect.clone();
        want.sort_by(f64::total_cmp);
        assert_eq!(got, want, "level {level} must deliver every record once");
    }
}

#[test]
fn romio_2gb_limit_is_enforced_per_operation() {
    let (fs, _) = rect_file(8, StripeSpec::new(1, 4096));
    World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
        let f = MpiFile::open(&fs, "rects.bin", Hints::default()).unwrap();
        // Can't allocate >2 GiB in a test; validate through write_at whose
        // length check runs before any allocation-dependent work.
        let huge = vec![0u8; 64];
        let ok = f.write_at(comm, 0, &huge);
        assert!(ok.is_ok());
        // The checker itself is covered in unit tests; here confirm the
        // public error type round-trips.
        let err = MsimError::CountOverflow { requested: 3 << 30 };
        assert!(err.to_string().contains("2 GiB"));
    });
}

#[test]
fn reader_selection_affects_collective_read_time() {
    // Same file and workload; a node count that divides the stripe count
    // beats one that doesn't (Figure 11's mechanism, end to end).
    let n = 64 * 1024u64;
    let elapsed = |nodes: usize| {
        let (fs, _) = rect_file(n, StripeSpec::new(64, 16 << 10));
        fs.set_active_ranks(nodes * 4);
        let out = World::run(WorldConfig::new(Topology::new(nodes, 4)), move |comm| {
            let f = MpiFile::open(&fs, "rects.bin", Hints::default()).unwrap();
            let p = comm.size() as u64;
            let per = n / p;
            let off = comm.rank() as u64 * per * RECT_RECORD_BYTES as u64;
            let mut buf = vec![0u8; (per * RECT_RECORD_BYTES as u64) as usize];
            f.read_at_all(comm, off, &mut buf).unwrap();
            comm.now()
        });
        out.into_iter().fold(0.0, f64::max)
    };
    // Readers: 32 nodes -> 32 readers; 48 nodes -> still 32 readers but
    // the job is larger; throughput per process must be worse at 48.
    assert_eq!(select_readers(FsKind::Lustre, 64, 32, None), 32);
    assert_eq!(select_readers(FsKind::Lustre, 64, 48, None), 32);
    let t32 = elapsed(32);
    let t48 = elapsed(48);
    // Equal reader counts on the same volume: 48 nodes cannot be
    // meaningfully faster.
    assert!(t48 > t32 * 0.8, "t32 {t32} vs t48 {t48}");
}

#[test]
fn cb_nodes_hint_caps_aggregators() {
    // Low request latency + enough volume that the aggregators' client-
    // side throughput is the bottleneck; fewer aggregators then means
    // less parallel ingest bandwidth.
    let n = 256 * 1024u64;
    let run_with = |hints: Hints| {
        let mut cfg = FsConfig::lustre_comet();
        cfg.perf.request_latency = 2.0e-6;
        let fs = SimFs::new(cfg);
        let rects: Vec<Rect> = (0..n)
            .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0))
            .collect();
        fs.create("rects.bin", Some(StripeSpec::new(16, 16 << 10)))
            .unwrap()
            .append(encode_rects(&rects));
        let out = World::run(WorldConfig::new(Topology::new(4, 4)), move |comm| {
            let f = MpiFile::open(&fs, "rects.bin", hints).unwrap();
            let p = comm.size() as u64;
            let per = n / p;
            let off = comm.rank() as u64 * per * RECT_RECORD_BYTES as u64;
            let mut buf = vec![0u8; (per * RECT_RECORD_BYTES as u64) as usize];
            f.read_at_all(comm, off, &mut buf).unwrap();
            comm.now()
        });
        out.into_iter().fold(0.0, f64::max)
    };
    let free = run_with(Hints::default());
    let capped = run_with(Hints::default().with_cb_nodes(1));
    assert!(
        capped > free,
        "1 aggregator ({capped}) must be slower than 4 ({free})"
    );
}

#[test]
fn file_views_tile_with_gaps() {
    // A vector view skipping every other 8-byte record.
    let fs = SimFs::new(FsConfig::lustre_comet());
    let f = fs.create("v.bin", None).unwrap();
    let data: Vec<u8> = (0..128u8).collect();
    f.append(&data);
    World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
        // 8 payload bytes tiled every 16 bytes: the resized-type idiom.
        let filetype = Datatype::resized(Datatype::contiguous(8, Datatype::Byte), 16);
        let view = FileView::new(0, filetype).unwrap();
        let mut file = MpiFile::open(&fs, "v.bin", Hints::default()).unwrap();
        file.set_view(view);
        let mut buf = vec![0u8; 32]; // 4 instances of 8 payload bytes
        let nread = file.read_all(comm, 0, 1, &mut buf).unwrap();
        assert_eq!(nread, 32);
        // Instance k starts at byte 16k; payload = bytes 16k..16k+8.
        for k in 0..4 {
            for j in 0..8 {
                assert_eq!(buf[k * 8 + j], (16 * k + j) as u8);
            }
        }
    });
}

#[test]
fn stats_account_for_exact_volumes() {
    let n = 512u64;
    let (fs, _) = rect_file(n, StripeSpec::new(4, 2048));
    let expected_bytes = n * RECT_RECORD_BYTES as u64;
    let fs2 = Arc::clone(&fs);
    World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
        let f = MpiFile::open(&fs2, "rects.bin", Hints::default()).unwrap();
        let p = comm.size() as u64;
        let per = n / p;
        let off = comm.rank() as u64 * per * RECT_RECORD_BYTES as u64;
        let mut buf = vec![0u8; (per * RECT_RECORD_BYTES as u64) as usize];
        f.read_at(comm, off, &mut buf).unwrap();
    });
    assert_eq!(fs.stats().bytes_read(), expected_bytes);
    assert_eq!(fs.stats().read_ops(), 4);
}
