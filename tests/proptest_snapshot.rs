//! Property-based oracle for the binary snapshot subsystem: for *any*
//! input, writer world size, decomposition policy and exchange chunk
//! setting, `write_partitioned` → `read_partitioned` under the same
//! world and decomposition is **bit-identical** to the in-memory
//! partitioned pairs — and re-reading under a *different* rank count
//! preserves the record multiset while routing every record to its
//! cell's owner.

use mpi_vector_io::core::decomp::{DecompConfig, DecompPolicy, UniformDecomposition};
use mpi_vector_io::core::exchange::{ExchangeChunk, ZeroCopy};
use mpi_vector_io::core::grid::CellMap;
use mpi_vector_io::core::pipeline::{self, PipelineOptions};
use mpi_vector_io::core::snapshot::{self, SnapshotReadOptions, SnapshotWriteOptions};
use mpi_vector_io::geom::{wkb, wkt};
use mpi_vector_io::prelude::*;
use mpi_vector_io::sjoin::{spatial_join_snapshots, SnapshotJoinOptions};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random WKT dataset (mixed shapes + userdata).
fn dataset_text(records: usize, salt: u64) -> String {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut text = String::new();
    for i in 0..records {
        let x = next() * 40.0;
        let y = next() * 25.0;
        match i % 3 {
            0 => text.push_str(&format!("POINT ({x} {y})\tp{i}\n")),
            1 => text.push_str(&format!(
                "LINESTRING ({x} {y}, {} {})\tl{i}\n",
                x + next() * 5.0 + 0.1,
                y + next() * 5.0 + 0.1
            )),
            _ => {
                let w = next() * 4.0 + 0.1;
                let h = next() * 4.0 + 0.1;
                text.push_str(&format!(
                    "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tg{i}\n",
                    x + w,
                    x + w,
                    y + h,
                    y + h
                ));
            }
        }
    }
    text
}

/// Parses the deterministic WKT dataset into features, for fabricating
/// join layers without a file read.
fn join_layer(records: usize, salt: u64) -> Vec<Feature> {
    dataset_text(records, salt)
        .lines()
        .map(|l| {
            let (g, u) = l.split_once('\t').unwrap();
            Feature::with_userdata(wkt::parse(g).unwrap(), u)
        })
        .collect()
}

/// Canonical string form of a routed pair, for multiset comparison.
fn key(cell: u32, f: &Feature) -> String {
    format!("{cell}|{}|{}", wkt::write(&f.geometry), f.userdata)
}

/// The round-trip oracle body, shared by the proptest sweep and the
/// deterministic edge-case tests below. Panics on any violation.
fn round_trip_case(
    records: usize,
    salt: u64,
    write_ranks: usize,
    read_ranks: usize,
    policy: usize,
    chunk_bytes: u64,
) {
    let cfg = [
        DecompConfig::uniform(GridSpec::square(5)),
        DecompConfig::hilbert(GridSpec::square(5)),
        DecompConfig::adaptive(GridSpec::square(5), 2),
    ][policy];
    // Low values select the blocking single round; the rest sweep
    // finite record-aligned chunk caps.
    let chunk = if chunk_bytes < 16 {
        ExchangeChunk::Unlimited
    } else {
        ExchangeChunk::Bytes(chunk_bytes)
    };
    let text = dataset_text(records, salt);
    let fs = SimFs::new(FsConfig::lustre_comet());
    fs.create("d.wkt", None).unwrap().append(text.as_bytes());
    let read = ReadOptions::default().with_block_size(4 << 10);

    // Ingest at the writer world size, persist, and re-read under the
    // same world + decomposition: must be bit-identical (same pairs,
    // same order), for every chunk policy.
    let written = {
        let fs = Arc::clone(&fs);
        World::run(
            WorldConfig::new(Topology::single_node(write_ranks)),
            move |comm| {
                let rep = pipeline::ingest(
                    comm,
                    &fs,
                    "d.wkt",
                    &read,
                    &WktLineParser,
                    &cfg,
                    &PipelineOptions::default().with_workers(2),
                )
                .unwrap();
                let w = rep
                    .write_partitioned(comm, &fs, "s.bin", &SnapshotWriteOptions::default())
                    .unwrap();
                assert_eq!(w.section.records, rep.owned.len() as u64);
                let ropts = SnapshotReadOptions::default().with_chunk(chunk);
                let (back, rrep) =
                    snapshot::read_partitioned(comm, &fs, "s.bin", &*rep.decomp, &ropts).unwrap();
                assert_eq!(back, rep.owned, "same-world reload must be bit-identical");
                assert_eq!(rrep.records_scanned, rep.owned.len() as u64);
                rep.owned
            },
        )
    };
    let mut expect: Vec<String> = written.iter().flatten().map(|(c, f)| key(*c, f)).collect();
    expect.sort();

    // Re-read under a different rank count with a decomposition
    // rebuilt from the header: the multiset survives and every record
    // lands on its cell's owner.
    let reread = {
        let fs = Arc::clone(&fs);
        World::run(
            WorldConfig::new(Topology::single_node(read_ranks)),
            move |comm| {
                let meta = snapshot::read_meta(&fs, "s.bin").unwrap();
                let grid = UniformGrid::new(meta.bounds, meta.spec);
                let d = UniformDecomposition::new(grid, CellMap::RoundRobin, comm.size());
                let ropts = SnapshotReadOptions::default().with_chunk(chunk);
                let (back, orep) =
                    snapshot::read_partitioned(comm, &fs, "s.bin", &d, &ropts).unwrap();
                for (cell, _) in &back {
                    assert_eq!(d.cell_to_rank(*cell), comm.rank(), "misrouted record");
                }
                // The zero-copy frames read is the same collective over
                // the same bytes: materializing its borrowed views must
                // reproduce the owned read bit-for-bit, with the same
                // scan and exchange counters.
                let (store, frep) =
                    snapshot::read_partitioned_frames(comm, &fs, "s.bin", &d, &ropts).unwrap();
                assert_eq!(store.records(), back.len() as u64);
                let materialized: Vec<(u32, Feature)> = store
                    .frames()
                    .map(|fr| {
                        let (g, _) = wkb::decode_ref(fr.wkb).unwrap();
                        (
                            fr.cell,
                            Feature::with_userdata(g.to_geometry(), fr.userdata),
                        )
                    })
                    .collect();
                assert_eq!(materialized, back, "frames read diverged from owned read");
                assert_eq!(frep.records_scanned, orep.records_scanned);
                assert_eq!(frep.bytes_read, orep.bytes_read);
                assert_eq!(frep.exchange.bytes_received, orep.exchange.bytes_received);
                back
            },
        )
    };
    let mut got: Vec<String> = reread.iter().flatten().map(|(c, f)| key(*c, f)).collect();
    got.sort();
    assert_eq!(got, expect);
}

proptest! {
    // Every case spawns 2-3 worlds of threads; keep the count moderate
    // (but high enough that skewed draws with empty ranks are hit).
    // Seed pinned so CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(24).with_seed(0x6d76_696f_736e_6170))]

    #[test]
    fn snapshot_round_trip_oracle(
        records in 0usize..120,
        salt in 0u64..1_000,
        write_ranks in 1usize..5,
        read_ranks in 1usize..5,
        policy in 0usize..3,
        chunk_bytes in 0u64..4096,
    ) {
        round_trip_case(records, salt, write_ranks, read_ranks, policy, chunk_bytes);
    }

    /// The snapshot-backed join answers identically with the zero-copy
    /// frame path forced on and forced off — same pairs in the same
    /// order, same filter/refine counters — for every writer/reader
    /// world size, rebuild policy and exchange chunk cap.
    #[test]
    fn snapshot_join_is_bit_identical_zerocopy_on_and_off(
        lrecords in 1usize..40,
        rrecords in 1usize..40,
        salt in 0u64..1_000,
        write_ranks in 1usize..4,
        join_ranks in 1usize..5,
        hilbert in any::<bool>(),
        chunk_bytes in 0u64..2048,
    ) {
        let chunk = if chunk_bytes < 16 {
            ExchangeChunk::Unlimited
        } else {
            ExchangeChunk::Bytes(chunk_bytes)
        };
        let fs = SimFs::new(FsConfig::lustre_comet());
        {
            let fs = Arc::clone(&fs);
            World::run(
                WorldConfig::new(Topology::single_node(write_ranks)),
                move |comm| {
                    let grid =
                        UniformGrid::new(Rect::new(0.0, 0.0, 50.0, 35.0), GridSpec::square(5));
                    let d = UniformDecomposition::new(grid, CellMap::RoundRobin, comm.size());
                    for (path, n, s) in
                        [("l.bin", lrecords, salt), ("r.bin", rrecords, salt ^ 0xDEAD)]
                    {
                        let mut pairs: Vec<(u32, Feature)> = Vec::new();
                        for f in join_layer(n, s) {
                            for cell in d.cells_for_rect_vec(&f.geometry.envelope()) {
                                if d.cell_to_rank(cell) == comm.rank() {
                                    pairs.push((cell, f.clone()));
                                }
                            }
                        }
                        snapshot::write_partitioned(
                            comm,
                            &fs,
                            path,
                            &pairs,
                            &d,
                            &SnapshotWriteOptions::default(),
                        )
                        .unwrap();
                    }
                },
            );
        }
        let run = |zerocopy: ZeroCopy| {
            let fs = Arc::clone(&fs);
            World::run(
                WorldConfig::new(Topology::single_node(join_ranks)),
                move |comm| {
                    let opts = SnapshotJoinOptions {
                        decomp: if hilbert {
                            DecompPolicy::Hilbert
                        } else {
                            DecompPolicy::Uniform(CellMap::RoundRobin)
                        },
                        read: SnapshotReadOptions::default().with_chunk(chunk),
                        zerocopy,
                    };
                    let rep =
                        spatial_join_snapshots(comm, &fs, "l.bin", "r.bin", &opts).unwrap();
                    (rep.pairs, rep.filter_candidates, rep.refine_tests)
                },
            )
        };
        let on = run(ZeroCopy::On);
        let off = run(ZeroCopy::Off);
        for (rank, (a, b)) in on.iter().zip(off.iter()).enumerate() {
            prop_assert_eq!(
                a, b,
                "zerocopy on/off diverged on rank {}/{} (hilbert {}, chunk {:?})",
                rank, join_ranks, hilbert, chunk
            );
        }
    }
}

/// Zero records anywhere: every section is empty and the snapshot is just
/// a header + table. Regression for the empty-section layout bug, pinned
/// deterministically rather than left to the proptest draw.
#[test]
fn snapshot_round_trip_zero_records() {
    for policy in 0..3 {
        round_trip_case(0, 7, 3, 2, policy, 0);
    }
}

/// More ranks than records: at least two writer ranks own nothing, so the
/// section table carries empty (possibly trailing) sections. Regression:
/// such a file used to fail re-read as "section ends beyond file length".
#[test]
fn snapshot_round_trip_more_ranks_than_records() {
    for records in [1usize, 2] {
        round_trip_case(records, 3, 4, 3, 0, 64);
    }
}

/// One populated rank at the *front* of a four-rank world (clustered
/// input in the first cell), exercising a run of trailing empty sections
/// under every decomposition policy.
#[test]
fn snapshot_round_trip_single_record_all_policies() {
    for policy in 0..3 {
        round_trip_case(1, 11, 4, 1, policy, 0);
    }
}
