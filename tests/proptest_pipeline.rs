//! Property-based test of the streaming ingest pipeline: for *any* worker
//! count, chunk sizes, rank count and input, the pipelined
//! parse → cell-map → serialize → exchange produces exactly the pairs the
//! sequential parse → project → exchange path produces.

use mpi_vector_io::core::decomp::{self, DecompConfig};
use mpi_vector_io::core::exchange::{exchange_features, ExchangeOptions};
use mpi_vector_io::core::grid::GridSpec;
use mpi_vector_io::core::pipeline::{self, PipelineOptions};
use mpi_vector_io::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random WKT dataset (mixed shapes + userdata).
fn dataset_text(records: usize, salt: u64) -> String {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mut text = String::new();
    for i in 0..records {
        let x = next() * 50.0;
        let y = next() * 30.0;
        match i % 3 {
            0 => text.push_str(&format!("POINT ({x} {y})\tp{i}\n")),
            1 => text.push_str(&format!(
                "LINESTRING ({x} {y}, {} {})\tl{i}\n",
                x + next() * 4.0 + 0.1,
                y + next() * 4.0 + 0.1
            )),
            _ => {
                let w = next() * 3.0 + 0.1;
                let h = next() * 3.0 + 0.1;
                text.push_str(&format!(
                    "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tg{i}\n",
                    x + w,
                    x + w,
                    y + h,
                    y + h
                ));
            }
        }
    }
    text
}

proptest! {
    // Every case spawns 2 worlds of threads; keep the count moderate.
    // Seed pinned so CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0x6d76_696f_7069_7065))]

    #[test]
    fn pipelined_ingest_equals_the_sequential_path(
        records in 0usize..150,
        salt in 0u64..1_000,
        workers in 1usize..9,
        ranks in 1usize..4,
        chunk_bytes in 32usize..2048,
        chunk_records in 1usize..64,
    ) {
        let text = dataset_text(records, salt);
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("d.wkt", None).unwrap().append(text.as_bytes());
        fs.set_active_ranks(ranks);
        let read = ReadOptions::default().with_block_size(4 << 10);
        let spec = GridSpec::square(5);

        let sequential = {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(ranks)), move |comm| {
                let feats = read_features(comm, &fs, "d.wkt", &read, &WktLineParser).unwrap();
                let sd = decomp::build_global(comm, &[&feats], &DecompConfig::uniform(spec));
                let pairs: Vec<(u32, Feature)> = feats
                    .iter()
                    .flat_map(|f| {
                        sd.cells_for_rect_vec(&f.geometry.envelope())
                            .into_iter()
                            .map(|c| (c, f.clone()))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                exchange_features(comm, pairs, &*sd, &ExchangeOptions::default())
                    .unwrap()
                    .0
            })
        };

        let pipelined = {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(ranks)), move |comm| {
                let opts = PipelineOptions::default()
                    .with_workers(workers)
                    .with_parse_chunk_bytes(chunk_bytes)
                    .with_partition_chunk_records(chunk_records);
                pipeline::ingest(
                    comm,
                    &fs,
                    "d.wkt",
                    &read,
                    &WktLineParser,
                    &DecompConfig::uniform(spec),
                    &opts,
                )
                .unwrap()
                .owned
            })
        };

        prop_assert_eq!(sequential, pipelined);
    }
}
