//! Property-based tests of the file-partitioning invariant: every record
//! is delivered to exactly one rank, for arbitrary record lengths, block
//! sizes, rank counts and boundary strategies.

use mpi_vector_io::prelude::*;
use proptest::prelude::*;

/// Builds a file from the given record lengths (record i is `len[i]`
/// copies of a letter derived from i, so records are distinguishable).
fn build_file(lens: &[usize], trailing_newline: bool) -> (std::sync::Arc<SimFs>, Vec<String>) {
    let fs = SimFs::new(FsConfig::test_tiny_like());
    let records: Vec<String> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            let ch = (b'a' + (i % 26) as u8) as char;
            format!("{i:05}{}", ch.to_string().repeat(l))
        })
        .collect();
    let mut text = records.join("\n");
    if trailing_newline {
        text.push('\n');
    }
    let f = fs.create("p.txt", None).unwrap();
    f.append(text.as_bytes());
    (fs, records)
}

/// Test-only filesystem shim (mirrors `FsConfig::test_tiny` which lives
/// behind the pfs crate's test cfg).
trait TestTiny {
    fn test_tiny_like() -> FsConfig;
}

impl TestTiny for FsConfig {
    fn test_tiny_like() -> FsConfig {
        let mut cfg = FsConfig::lustre_comet();
        cfg.default_stripe = StripeSpec::new(2, 1024);
        cfg
    }
}

fn run_partition(fs: &std::sync::Arc<SimFs>, ranks: usize, opts: ReadOptions) -> Vec<String> {
    let fs = std::sync::Arc::clone(fs);
    let per_rank = World::run(
        WorldConfig::new(Topology::single_node(ranks)),
        move |comm| read_partition_text(comm, &fs, "p.txt", &opts).unwrap(),
    );
    let mut all: Vec<String> = per_rank
        .iter()
        .flat_map(|t| t.lines().map(str::to_string))
        .filter(|l| !l.is_empty())
        .collect();
    all.sort();
    all
}

proptest! {
    // Seed pinned so CI failures are reproducible; override with
    // PROPTEST_SEED to explore a different stream.
    #![proptest_config(ProptestConfig::with_cases(48).with_seed(0x6d76_696f_7061_7274))]

    #[test]
    fn message_strategy_delivers_exactly_once(
        lens in proptest::collection::vec(0usize..120, 1..60),
        ranks in 1usize..7,
        block in 256u64..2048,
        trailing in any::<bool>(),
    ) {
        let (fs, records) = build_file(&lens, trailing);
        let opts = ReadOptions::default()
            .with_block_size(block)
            .with_max_geometry_bytes(4096);
        let got = run_partition(&fs, ranks, opts);
        let mut expect = records.clone();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn overlap_strategy_delivers_exactly_once(
        lens in proptest::collection::vec(0usize..120, 1..60),
        ranks in 1usize..7,
        block in 256u64..2048,
        trailing in any::<bool>(),
    ) {
        let (fs, records) = build_file(&lens, trailing);
        let opts = ReadOptions::default()
            .with_strategy(BoundaryStrategy::Overlap)
            .with_block_size(block)
            .with_max_geometry_bytes(4096);
        let got = run_partition(&fs, ranks, opts);
        let mut expect = records.clone();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn strategies_agree_with_each_other(
        lens in proptest::collection::vec(0usize..80, 1..40),
        ranks in 1usize..5,
        block in 512u64..1536,
    ) {
        let (fs, _) = build_file(&lens, true);
        let msg = run_partition(
            &fs,
            ranks,
            ReadOptions::default().with_block_size(block).with_max_geometry_bytes(4096),
        );
        let (fs2, _) = build_file(&lens, true);
        let ovl = run_partition(
            &fs2,
            ranks,
            ReadOptions::default()
                .with_strategy(BoundaryStrategy::Overlap)
                .with_block_size(block)
                .with_max_geometry_bytes(4096),
        );
        prop_assert_eq!(msg, ovl);
    }

    #[test]
    fn collective_level_agrees_with_independent(
        lens in proptest::collection::vec(0usize..80, 1..40),
        ranks in 1usize..5,
        block in 512u64..1536,
    ) {
        let (fs, _) = build_file(&lens, true);
        let l0 = run_partition(
            &fs,
            ranks,
            ReadOptions::default().with_block_size(block).with_max_geometry_bytes(4096),
        );
        let (fs2, _) = build_file(&lens, true);
        let l1 = run_partition(
            &fs2,
            ranks,
            ReadOptions::default()
                .with_level(AccessLevel::Level1)
                .with_block_size(block)
                .with_max_geometry_bytes(4096),
        );
        prop_assert_eq!(l0, l1);
    }
}
