//! Property-based oracle tests of the resident query engine: batched
//! distributed serving must answer exactly like a naive single-machine
//! brute-force pass over the whole dataset, for every decomposition
//! policy, rank count, exchange chunk size and cache setting.

use mpi_vector_io::core::decomp::{
    AdaptiveBisection, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mpi_vector_io::core::exchange::{ExchangeChunk, ZeroCopy};
use mpi_vector_io::geom::algo::{point_geometry_distance, rect_intersects_geometry};
use mpi_vector_io::prelude::*;
use mpi_vector_io::sjoin::{EngineOptions, Query, QueryAnswer, QueryEngine, ServeCache};
use proptest::prelude::*;
use std::sync::Arc;

/// The fixed world every generated dataset and query lives in.
const WORLD: f64 = 16.0;

/// Builds one of the five decomposition variants over a `side × side`
/// grid spanning the `[0, WORLD]²` world (same shapes as the exchange
/// proptests: three classic cell maps, Hilbert runs, adaptive bisection
/// over a deterministic synthetic histogram).
fn mk_decomp(policy: u8, side: u32, ranks: usize) -> Box<dyn SpatialDecomposition> {
    let grid = UniformGrid::new(Rect::new(0.0, 0.0, WORLD, WORLD), GridSpec::square(side));
    match policy {
        0 => Box::new(UniformDecomposition::new(grid, CellMap::RoundRobin, ranks)),
        1 => Box::new(UniformDecomposition::new(grid, CellMap::Block, ranks)),
        2 => Box::new(UniformDecomposition::new(
            grid,
            CellMap::Hilbert { cells_x: side },
            ranks,
        )),
        3 => Box::new(HilbertDecomposition::new(grid, ranks)),
        _ => {
            let counts: Vec<u64> = (0..grid.num_cells() as u64).map(|c| (c * 7) % 13).collect();
            Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks))
        }
    }
}

/// Expands the generated `(x, y)` seeds into a mixed-geometry dataset —
/// points, small squares and short segments — labelled by index. The
/// same list is fabricated inside every rank and by the oracle, so the
/// comparison needs no channel besides determinism.
fn mk_features(coords: &[(f64, f64)]) -> Vec<Feature> {
    coords
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            let g = match i % 5 {
                0 => {
                    let h = 0.6;
                    let (x0, y0) = ((x - h).max(0.0), (y - h).max(0.0));
                    let x1 = (x + h).min(WORLD).max(x0 + 1e-6);
                    let y1 = (y + h).min(WORLD).max(y0 + 1e-6);
                    Geometry::Polygon(
                        Polygon::from_coords(
                            vec![
                                Point::new(x0, y0),
                                Point::new(x1, y0),
                                Point::new(x1, y1),
                                Point::new(x0, y1),
                            ],
                            vec![],
                        )
                        .unwrap(),
                    )
                }
                1 => Geometry::LineString(
                    LineString::new(vec![
                        Point::new(x, y),
                        Point::new((x + 0.8).min(WORLD), (y + 0.4).min(WORLD)),
                    ])
                    .unwrap(),
                ),
                _ => Geometry::Point(Point::new(x, y)),
            };
            Feature::with_userdata(g, format!("f{i:03}"))
        })
        .collect()
}

/// Expands generated query seeds into a mixed batch: `kind` selects
/// range / point / kNN, `(x, y)` places it, `w` doubles as the window
/// half-width or (scaled) the `k` of a kNN probe — deliberately allowed
/// to exceed the dataset size.
fn mk_queries(seeds: &[(u8, f64, f64, f64)]) -> Vec<Query> {
    seeds
        .iter()
        .map(|&(kind, x, y, w)| match kind % 3 {
            0 => Query::Range(Rect::new(
                (x - w).max(0.0),
                (y - w).max(0.0),
                (x + w).min(WORLD),
                (y + w).min(WORLD),
            )),
            1 => Query::Point(Point::new(x, y)),
            _ => Query::Knn {
                at: Point::new(x, y),
                k: (w * 10.0) as u32 + 1,
            },
        })
        .collect()
}

/// The naive oracle: answers one query by a full scan of the global
/// dataset — intersection test per feature for range/point, brute-force
/// distance sort (ties broken by userdata, exactly the engine's total
/// order) truncated to `k` for kNN.
fn oracle(features: &[Feature], q: &Query) -> QueryAnswer {
    match *q {
        Query::Range(r) => {
            let mut m: Vec<String> = features
                .iter()
                .filter(|f| rect_intersects_geometry(&r, &f.geometry))
                .map(|f| f.userdata.clone())
                .collect();
            m.sort();
            QueryAnswer::Matches(m)
        }
        Query::Point(p) => oracle(features, &Query::Range(p.envelope())),
        Query::Knn { at, k } => {
            let mut d: Vec<(f64, String)> = features
                .iter()
                .map(|f| {
                    (
                        point_geometry_distance(&at, &f.geometry),
                        f.userdata.clone(),
                    )
                })
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            d.truncate(k as usize);
            QueryAnswer::Matches(
                d.into_iter()
                    .map(|(dist, u)| format!("{dist:.9}:{u}"))
                    .collect(),
            )
        }
    }
}

/// Flattens an engine answer into the oracle's comparable form.
fn canon(a: &QueryAnswer) -> QueryAnswer {
    match a {
        QueryAnswer::Matches(m) => QueryAnswer::Matches(m.clone()),
        QueryAnswer::Neighbors(ns) => QueryAnswer::Matches(
            ns.iter()
                .map(|n| format!("{:.9}:{}", n.distance, n.userdata))
                .collect(),
        ),
    }
}

proptest! {
    // Worlds spawn threads; keep case counts moderate. Seed pinned so
    // CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(20).with_seed(0x6d76_696f_7365_7276))]

    /// The tentpole's contract: for every rank count, decomposition
    /// policy, chunk size and cache setting, a served batch of mixed
    /// queries answers identically on every rank and identically to the
    /// naive brute-force oracle — including kNN ties and `k` larger
    /// than the dataset. Serving the same batch twice must also be
    /// idempotent (the second pass exercises the cache when enabled).
    #[test]
    fn serve_matches_bruteforce_oracle_everywhere(
        ranks_idx in 0usize..3,
        side in 1u32..6,
        policy in 0u8..5,
        chunk_idx in 0usize..3,
        cache in any::<bool>(),
        coords in proptest::collection::vec((0.0..WORLD, 0.0..WORLD), 0..28),
        qseeds in proptest::collection::vec(
            (0u8..6, 0.0..WORLD, 0.0..WORLD, 0.05f64..4.0),
            1..7
        ),
    ) {
        let ranks = [2usize, 4, 16][ranks_idx];
        let chunk = [
            ExchangeChunk::Unlimited,
            ExchangeChunk::Bytes(96),
            ExchangeChunk::Bytes(1024),
        ][chunk_idx];
        let features = mk_features(&coords);
        let queries = mk_queries(&qseeds);
        let expected: Vec<QueryAnswer> =
            queries.iter().map(|q| oracle(&features, q)).collect();

        let coords = Arc::new(coords);
        let qseeds = Arc::new(qseeds);
        let out = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                // Every rank fabricates the same global dataset and
                // keeps the replicas it owns under the decomposition —
                // the resident state an ingest would have produced.
                let sd = mk_decomp(policy, side, comm.size());
                let features = mk_features(&coords);
                let mut owned: Vec<(u32, Feature)> = Vec::new();
                for f in &features {
                    for cell in sd.cells_for_rect_vec(&f.geometry.envelope()) {
                        if sd.cell_to_rank(cell) == comm.rank() {
                            owned.push((cell, f.clone()));
                        }
                    }
                }
                let opts = EngineOptions {
                    chunk,
                    cache: if cache { ServeCache::Entries(64) } else { ServeCache::Off },
                    ..Default::default()
                };
                let mut eng = QueryEngine::from_parts(comm, sd, owned, &opts);
                let queries = mk_queries(&qseeds);
                let first = eng.serve(comm, &queries).unwrap();
                let second = eng.serve(comm, &queries).unwrap();
                let canon1: Vec<QueryAnswer> = first.answers.iter().map(canon).collect();
                let canon2: Vec<QueryAnswer> = second.answers.iter().map(canon).collect();
                let cache_hits = second.stats.answered_from_cache;
                (canon1, canon2, cache_hits)
            },
        );
        for (rank, (first, second, cache_hits)) in out.iter().enumerate() {
            prop_assert_eq!(
                first, &expected,
                "rank {}/{} ranks, policy {}, side {}, chunk {:?}, cache {}",
                rank, ranks, policy, side, chunk, cache
            );
            prop_assert_eq!(second, &expected, "second serve diverged on rank {}", rank);
            if cache {
                // Every repeated query must come from the cache.
                prop_assert_eq!(*cache_hits as usize, expected.len());
            } else {
                prop_assert_eq!(*cache_hits, 0u64);
            }
        }
    }

    /// `MVIO_ZEROCOPY` is a pure read-path switch: for every rank
    /// count, decomposition policy and chunk size, the served answers
    /// and exchange counters are bit-identical with the borrowed frame
    /// path forced on and forced off.
    #[test]
    fn serve_is_bit_identical_zerocopy_on_and_off(
        ranks_idx in 0usize..3,
        side in 1u32..5,
        policy in 0u8..5,
        chunk_idx in 0usize..3,
        coords in proptest::collection::vec((0.0..WORLD, 0.0..WORLD), 0..24),
        qseeds in proptest::collection::vec(
            (0u8..6, 0.0..WORLD, 0.0..WORLD, 0.05f64..4.0),
            1..6
        ),
    ) {
        let ranks = [2usize, 3, 8][ranks_idx];
        let chunk = [
            ExchangeChunk::Unlimited,
            ExchangeChunk::Bytes(96),
            ExchangeChunk::Bytes(1024),
        ][chunk_idx];
        let coords = Arc::new(coords);
        let qseeds = Arc::new(qseeds);
        let run = |zerocopy: ZeroCopy| {
            let coords = Arc::clone(&coords);
            let qseeds = Arc::clone(&qseeds);
            World::run(
                WorldConfig::new(Topology::single_node(ranks)),
                move |comm| {
                    let sd = mk_decomp(policy, side, comm.size());
                    let features = mk_features(&coords);
                    let mut owned: Vec<(u32, Feature)> = Vec::new();
                    for f in &features {
                        for cell in sd.cells_for_rect_vec(&f.geometry.envelope()) {
                            if sd.cell_to_rank(cell) == comm.rank() {
                                owned.push((cell, f.clone()));
                            }
                        }
                    }
                    let opts = EngineOptions {
                        chunk,
                        cache: ServeCache::Off,
                        zerocopy,
                        ..Default::default()
                    };
                    let mut eng = QueryEngine::from_parts(comm, sd, owned, &opts);
                    let rep = eng.serve(comm, &mk_queries(&qseeds)).unwrap();
                    (
                        rep.answers,
                        rep.stats.shipped_records,
                        rep.stats.result_records,
                        rep.stats.query_exchange.bytes_received,
                        rep.stats.result_exchange.bytes_received,
                    )
                },
            )
        };
        let on = run(ZeroCopy::On);
        let off = run(ZeroCopy::Off);
        for (rank, (a, b)) in on.iter().zip(off.iter()).enumerate() {
            prop_assert_eq!(
                a, b,
                "zerocopy on/off diverged on rank {}/{} (policy {}, side {}, chunk {:?})",
                rank, ranks, policy, side, chunk
            );
        }
    }

    /// The one-shot `range_query` path and the resident engine are two
    /// routes to the same answer: the sorted union of per-rank
    /// `range_query` matches must equal the engine's (already global)
    /// batch answer, which must equal the brute-force oracle.
    #[test]
    fn resident_engine_agrees_with_one_shot_range_query(
        ranks in 1usize..5,
        coords in proptest::collection::vec((0.0..WORLD, 0.0..WORLD), 1..24),
        window in (0.0..WORLD, 0.0..WORLD, 0.2f64..6.0),
    ) {
        let rect = Rect::new(
            (window.0 - window.2).max(0.0),
            (window.1 - window.2).max(0.0),
            (window.0 + window.2).min(WORLD),
            (window.1 + window.2).min(WORLD),
        );
        let features = mk_features(&coords);
        let expected = match oracle(&features, &Query::Range(rect)) {
            QueryAnswer::Matches(m) => m,
            _ => unreachable!(),
        };

        // Install the dataset as a WKT layer so range_query's whole
        // pipeline (read → partition → exchange → walk) runs for real.
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let f = fs.create("oracle.wkt", None).unwrap();
        let mut text = format!("POINT (0.0 0.0)\tanchor-min\nPOINT ({WORLD} {WORLD})\tanchor-max\n");
        for feat in &features {
            text.push_str(&format!("{}\t{}\n", wkt::write(&feat.geometry), feat.userdata));
        }
        f.append(text.as_bytes());

        // Anchors are point features too: they match windows touching
        // the world's corners.
        let mut expected = expected;
        if rect.contains_point(&Point::new(0.0, 0.0)) {
            expected.push("anchor-min".into());
        }
        if rect.contains_point(&Point::new(WORLD, WORLD)) {
            expected.push("anchor-max".into());
        }
        expected.sort();

        let out = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                let rep = range_query(
                    comm,
                    &fs,
                    "oracle.wkt",
                    rect,
                    GridSpec::square(4),
                    // A fixed block size: the generated file can be
                    // smaller than `ranks × longest record`, where the
                    // default equal split would leave some rank a block
                    // with no record boundary in it.
                    &ReadOptions {
                        block_size: Some(1024),
                        ..Default::default()
                    },
                )
                .unwrap();
                rep.matches
            },
        );
        let mut union: Vec<String> = out.into_iter().flatten().collect();
        union.sort();
        prop_assert_eq!(union, expected);
    }
}
