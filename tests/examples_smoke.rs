//! Smoke test: every program in `examples/` must run to completion and
//! produce output. `cargo test` already builds the example binaries as
//! part of its default target selection, so this executes them straight
//! from the target directory — if an example rots (panics, errors, or
//! goes silent), this test fails rather than the quickstart docs.

use std::path::PathBuf;
use std::process::Command;

/// Every example that must keep working. Extend when adding examples.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "spatial_join",
    "range_query",
    "grid_output",
    "io_levels",
    "pipeline",
];

/// Locates a built example binary relative to this test executable
/// (`target/<profile>/deps/this_test` → `target/<profile>/examples/<name>`).
fn example_path(name: &str) -> PathBuf {
    let mut p = std::env::current_exe().expect("test executable path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("examples");
    p.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    p
}

#[test]
fn every_example_runs_to_completion() {
    for &name in EXAMPLES {
        let path = example_path(name);
        assert!(
            path.exists(),
            "example binary missing at {} — was the example renamed without updating EXAMPLES?",
            path.display()
        );
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stderr ---\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stdout.is_empty(),
            "example {name} ran but printed nothing — quickstart output rotted"
        );
    }
}

#[test]
fn examples_directory_matches_the_list() {
    // A new example that isn't in EXAMPLES would silently escape the
    // smoke test; fail loudly instead.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "rs").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(found, listed, "examples/ and EXAMPLES list disagree");
}
