//! Property-based tests of the spatial decompositions: the Hilbert key
//! is a true space-filling curve on `2^k × 2^k` grids, and every
//! decomposition policy satisfies the shared exactly-once oracle — each
//! feature's reference cell is assigned to exactly one rank.

use mpi_vector_io::core::decomp::{
    AdaptiveBisection, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mpi_vector_io::core::grid::{CellMap, GridSpec, UniformGrid};
use mpi_vector_io::geom::curve::hilbert_key_cells_order;
use mpi_vector_io::prelude::*;
use proptest::prelude::*;

/// The shared exactly-once oracle: for every feature envelope, the
/// decomposition must (a) map the envelope's min corner to exactly one
/// cell, (b) include that reference cell exactly once in the envelope's
/// cell set, and (c) assign that cell to exactly one rank — so the
/// reference-point dedup reports each result exactly once, whatever the
/// policy.
fn assert_exactly_once(decomp: &dyn SpatialDecomposition, envelopes: &[Rect]) {
    let ranks = decomp.num_ranks();
    // (c) global partition: every cell owned by exactly one rank.
    let mut owners = vec![0u32; decomp.num_cells() as usize];
    for r in 0..ranks {
        for c in decomp.cells_of_rank(r) {
            owners[c as usize] += 1;
        }
    }
    assert!(
        owners.iter().all(|&n| n == 1),
        "cells must partition across ranks: {owners:?}"
    );
    for env in envelopes {
        let rc = decomp
            .reference_cell(env)
            .expect("in-bounds envelope has a reference cell");
        let cells = decomp.cells_for_rect_vec(env);
        let hits = cells.iter().filter(|&&c| c == rc).count();
        assert_eq!(hits, 1, "reference cell {rc} must appear once in {cells:?}");
        assert!(
            decomp.cell_to_rank(rc) < ranks,
            "owner rank must be in range"
        );
    }
}

proptest! {
    // Seed pinned so CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(32).with_seed(0x6d76_696f_6465_636f))]

    #[test]
    fn hilbert_key_is_a_bijection_with_adjacent_steps(k in 1u32..7) {
        let side = 1u32 << k;
        let mut keyed: Vec<(u64, (u32, u32))> = (0..side)
            .flat_map(|y| (0..side).map(move |x| (hilbert_key_cells_order(k, x, y), (x, y))))
            .collect();
        keyed.sort_by_key(|&(key, _)| key);
        // Bijection onto 0..4^k: after sorting, the keys are exactly the
        // consecutive integers.
        for (i, &(key, _)) in keyed.iter().enumerate() {
            prop_assert_eq!(key, i as u64, "keys must be the dense range 0..{}", side as u64 * side as u64);
        }
        // Adjacency: consecutive keys are 4-neighbours (the curve's
        // defining property).
        for w in keyed.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            prop_assert_eq!(
                x0.abs_diff(x1) + y0.abs_diff(y1),
                1,
                "curve step {:?} -> {:?} must be adjacent", w[0].1, w[1].1
            );
        }
    }

    #[test]
    fn every_decomposition_assigns_reference_cells_exactly_once(
        side in 1u32..10,
        ranks in 1usize..9,
        rects in proptest::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..40.0, 0.0f64..40.0),
            1..30
        ),
    ) {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let spec = GridSpec::square(side);
        let envelopes: Vec<Rect> = rects
            .iter()
            .map(|&(x, y, w, h)| Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0)))
            .collect();
        // Histogram for the adaptive policy: the reference-cell counts of
        // the envelopes themselves (what the collective builder computes).
        let grid = UniformGrid::new(bounds, spec);
        let mut counts = vec![0u64; grid.num_cells() as usize];
        for env in &envelopes {
            let corner = Rect::new(env.min_x, env.min_y, env.min_x, env.min_y);
            if let Some(&c) = grid.cells_overlapping(&corner).first() {
                counts[c as usize] += 1;
            }
        }
        let decomps: Vec<Box<dyn SpatialDecomposition>> = vec![
            Box::new(UniformDecomposition::new(grid.clone(), CellMap::RoundRobin, ranks)),
            Box::new(HilbertDecomposition::new(grid.clone(), ranks)),
            Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks)),
        ];
        for d in &decomps {
            assert_exactly_once(&**d, &envelopes);
        }
        // The three policies tile identical cells here, so the *cell sets*
        // per envelope agree — only ownership differs.
        for env in &envelopes {
            let a = decomps[0].cells_for_rect_vec(env);
            prop_assert_eq!(&a, &decomps[1].cells_for_rect_vec(env));
            prop_assert_eq!(&a, &decomps[2].cells_for_rect_vec(env));
        }
    }
}
