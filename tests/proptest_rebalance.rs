//! Property-based oracle tests of online rebalancing: after any
//! generated stream of insert/delete batches — with threshold
//! rebalancing on or off — the engine's resident partition must be
//! bit-identical to a fresh ingest of the final dataset under the same
//! decomposition, and its served answers must match the brute-force
//! oracle, for every decomposition policy, rank count and chunk size.

use mpi_vector_io::core::decomp::{
    AdaptiveBisection, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mpi_vector_io::core::exchange::ExchangeChunk;
use mpi_vector_io::geom::algo::{point_geometry_distance, rect_intersects_geometry};
use mpi_vector_io::prelude::*;
use mpi_vector_io::sjoin::{
    EngineOptions, Query, QueryAnswer, QueryEngine, RebalancePolicy, ServeCache, Update,
};
use proptest::prelude::*;
use std::sync::Arc;

/// The fixed world every generated dataset and update lives in.
const WORLD: f64 = 16.0;

/// Builds one of the five decomposition variants over a `side × side`
/// grid spanning the `[0, WORLD]²` world (same shapes as the serve
/// proptests: three classic cell maps, Hilbert runs, adaptive bisection
/// over a deterministic synthetic histogram).
fn mk_decomp(policy: u8, side: u32, ranks: usize) -> Box<dyn SpatialDecomposition> {
    let grid = UniformGrid::new(Rect::new(0.0, 0.0, WORLD, WORLD), GridSpec::square(side));
    match policy {
        0 => Box::new(UniformDecomposition::new(grid, CellMap::RoundRobin, ranks)),
        1 => Box::new(UniformDecomposition::new(grid, CellMap::Block, ranks)),
        2 => Box::new(UniformDecomposition::new(
            grid,
            CellMap::Hilbert { cells_x: side },
            ranks,
        )),
        3 => Box::new(HilbertDecomposition::new(grid, ranks)),
        _ => {
            let counts: Vec<u64> = (0..grid.num_cells() as u64).map(|c| (c * 7) % 13).collect();
            Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks))
        }
    }
}

/// Expands the generated `(x, y)` seeds into a mixed-geometry base
/// dataset — points, small squares and short segments — labelled by
/// index. Identical fabrication inside every rank and in the oracle.
fn mk_features(coords: &[(f64, f64)]) -> Vec<Feature> {
    coords
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            let g = match i % 5 {
                0 => {
                    let h = 0.6;
                    let (x0, y0) = ((x - h).max(0.0), (y - h).max(0.0));
                    let x1 = (x + h).min(WORLD).max(x0 + 1e-6);
                    let y1 = (y + h).min(WORLD).max(y0 + 1e-6);
                    Geometry::Polygon(
                        Polygon::from_coords(
                            vec![
                                Point::new(x0, y0),
                                Point::new(x1, y0),
                                Point::new(x1, y1),
                                Point::new(x0, y1),
                            ],
                            vec![],
                        )
                        .unwrap(),
                    )
                }
                1 => Geometry::LineString(
                    LineString::new(vec![
                        Point::new(x, y),
                        Point::new((x + 0.8).min(WORLD), (y + 0.4).min(WORLD)),
                    ])
                    .unwrap(),
                ),
                _ => Geometry::Point(Point::new(x, y)),
            };
            Feature::with_userdata(g, format!("f{i:03}"))
        })
        .collect()
}

/// Turns the generated op stream into concrete update batches plus the
/// model dataset they leave behind, mirroring the engine's batch
/// semantics exactly: within one batch all inserts apply before all
/// deletes, and delete targets are drawn from the pre-batch dataset
/// (op `% 3 == 0` deletes — against an empty model it becomes a
/// deliberately-absent delete, which must be a counted no-op).
fn mk_script(base: &[Feature], ops: &[Vec<(u8, f64, f64)>]) -> (Vec<Vec<Update>>, Vec<Feature>) {
    let mut model: Vec<Feature> = base.to_vec();
    let mut next_id = 0usize;
    let mut batches = Vec::new();
    for batch_ops in ops {
        let mut inserts: Vec<Feature> = Vec::new();
        let mut deletes: Vec<Feature> = Vec::new();
        for &(op, x, y) in batch_ops {
            if op % 3 == 0 {
                if model.is_empty() {
                    deletes.push(Feature::with_userdata(
                        Geometry::Point(Point::new(x, y)),
                        "ghost",
                    ));
                } else {
                    let k = (((x / WORLD) * model.len() as f64) as usize).min(model.len() - 1);
                    let target = model[k].clone();
                    // One delete per distinct live instance: a second
                    // submission would be a missing-delete no-op and
                    // fall out of the model/engine equivalence below.
                    if !deletes.contains(&target) {
                        deletes.push(target);
                    }
                }
            } else {
                let f = Feature::with_userdata(
                    Geometry::Point(Point::new(x, y)),
                    format!("u{next_id:03}"),
                );
                next_id += 1;
                inserts.push(f);
            }
        }
        model.extend(inserts.iter().cloned());
        for d in &deletes {
            if let Some(p) = model.iter().position(|m| m == d) {
                model.remove(p);
            }
        }
        batches.push(
            inserts
                .into_iter()
                .map(Update::Insert)
                .chain(deletes.into_iter().map(Update::Delete))
                .collect(),
        );
    }
    (batches, model)
}

/// The replicas `rank` would hold if `features` were freshly ingested
/// under `sd` — the bit-identical target the mutated engine must hit.
fn fresh_partition(
    sd: &dyn SpatialDecomposition,
    features: &[Feature],
    rank: usize,
) -> Vec<(u32, String)> {
    let mut owned = Vec::new();
    for f in features {
        for cell in sd.cells_for_rect_vec(&f.geometry.envelope()) {
            if sd.cell_to_rank(cell) == rank {
                owned.push((cell, f.userdata.clone()));
            }
        }
    }
    owned.sort();
    owned
}

/// Expands generated query seeds into a mixed range/point/kNN batch.
fn mk_queries(seeds: &[(u8, f64, f64, f64)]) -> Vec<Query> {
    seeds
        .iter()
        .map(|&(kind, x, y, w)| match kind % 3 {
            0 => Query::Range(Rect::new(
                (x - w).max(0.0),
                (y - w).max(0.0),
                (x + w).min(WORLD),
                (y + w).min(WORLD),
            )),
            1 => Query::Point(Point::new(x, y)),
            _ => Query::Knn {
                at: Point::new(x, y),
                k: (w * 10.0) as u32 + 1,
            },
        })
        .collect()
}

/// The naive oracle: answers one query by a full scan of the global
/// dataset (same total order as the engine, including kNN ties).
fn oracle(features: &[Feature], q: &Query) -> QueryAnswer {
    match *q {
        Query::Range(r) => {
            let mut m: Vec<String> = features
                .iter()
                .filter(|f| rect_intersects_geometry(&r, &f.geometry))
                .map(|f| f.userdata.clone())
                .collect();
            m.sort();
            QueryAnswer::Matches(m)
        }
        Query::Point(p) => oracle(features, &Query::Range(p.envelope())),
        Query::Knn { at, k } => {
            let mut d: Vec<(f64, String)> = features
                .iter()
                .map(|f| {
                    (
                        point_geometry_distance(&at, &f.geometry),
                        f.userdata.clone(),
                    )
                })
                .collect();
            d.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            d.truncate(k as usize);
            QueryAnswer::Matches(
                d.into_iter()
                    .map(|(dist, u)| format!("{dist:.9}:{u}"))
                    .collect(),
            )
        }
    }
}

/// Flattens an engine answer into the oracle's comparable form.
fn canon(a: &QueryAnswer) -> QueryAnswer {
    match a {
        QueryAnswer::Matches(m) => QueryAnswer::Matches(m.clone()),
        QueryAnswer::Neighbors(ns) => QueryAnswer::Matches(
            ns.iter()
                .map(|n| format!("{:.9}:{}", n.distance, n.userdata))
                .collect(),
        ),
    }
}

proptest! {
    // Worlds spawn threads; keep case counts moderate. Seed pinned so
    // CI failures are reproducible (PROPTEST_SEED overrides).
    #![proptest_config(ProptestConfig::with_cases(20).with_seed(0x6d76_696f_7265_6261))]

    /// The tentpole's contract: for every rank count, decomposition
    /// policy, chunk size and rebalance setting, a mutated engine is
    /// indistinguishable from one freshly ingested from the final
    /// dataset — replica-for-replica under its (possibly re-bisected)
    /// decomposition, and answer-for-answer against the brute-force
    /// oracle. Ghost deletes must be counted, never applied.
    #[test]
    fn updates_and_rebalance_converge_to_a_fresh_ingest(
        ranks_idx in 0usize..3,
        side in 1u32..6,
        policy in 0u8..5,
        chunk_idx in 0usize..3,
        rebalance in any::<bool>(),
        coords in proptest::collection::vec((0.0..WORLD, 0.0..WORLD), 0..20),
        ops in proptest::collection::vec(
            proptest::collection::vec((0u8..6, 0.0..WORLD, 0.0..WORLD), 0..10),
            1..4
        ),
        qseeds in proptest::collection::vec(
            (0u8..6, 0.0..WORLD, 0.0..WORLD, 0.05f64..4.0),
            1..6
        ),
    ) {
        let ranks = [2usize, 4, 16][ranks_idx];
        let chunk = [
            ExchangeChunk::Unlimited,
            ExchangeChunk::Bytes(96),
            ExchangeChunk::Bytes(1024),
        ][chunk_idx];
        let base = mk_features(&coords);
        let (batches, final_model) = mk_script(&base, &ops);
        let queries = mk_queries(&qseeds);
        let expected: Vec<QueryAnswer> =
            queries.iter().map(|q| oracle(&final_model, q)).collect();
        let expected_ghosts: u64 = batches
            .iter()
            .flatten()
            .filter(|u| matches!(u, Update::Delete(f) if f.userdata == "ghost"))
            .count() as u64;

        let base = Arc::new(base);
        let batches = Arc::new(batches);
        let final_model = Arc::new(final_model);
        let qseeds = Arc::new(qseeds);
        let out = World::run(
            WorldConfig::new(Topology::single_node(ranks)),
            move |comm| {
                let sd = mk_decomp(policy, side, comm.size());
                let mut owned: Vec<(u32, Feature)> = Vec::new();
                for f in base.iter() {
                    for cell in sd.cells_for_rect_vec(&f.geometry.envelope()) {
                        if sd.cell_to_rank(cell) == comm.rank() {
                            owned.push((cell, f.clone()));
                        }
                    }
                }
                let opts = EngineOptions {
                    chunk,
                    cache: ServeCache::Off,
                    rebalance: if rebalance {
                        // Low threshold so small generated datasets
                        // actually trip it.
                        RebalancePolicy::Threshold(1.05)
                    } else {
                        RebalancePolicy::Off
                    },
                    ..Default::default()
                };
                let mut eng = QueryEngine::from_parts(comm, sd, owned, &opts);
                let mut ghosts = 0u64;
                let mut rebalances = 0u64;
                for batch in batches.iter() {
                    // Each rank submits a disjoint shard: an update must
                    // enter the system exactly once.
                    let mine: Vec<Update> = batch
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % comm.size() == comm.rank())
                        .map(|(_, u)| u.clone())
                        .collect();
                    let stats = eng.apply_updates(comm, &mine).unwrap();
                    ghosts += stats.missing_deletes;
                    let rep = eng.maybe_rebalance(comm).unwrap();
                    rebalances += rep.rebalanced as u64;
                }
                let mut resident: Vec<(u32, String)> = eng
                    .resident()
                    .iter()
                    .map(|(c, f)| (*c, f.userdata.clone()))
                    .collect();
                resident.sort();
                let fresh =
                    fresh_partition(eng.decomposition(), &final_model, comm.rank());
                let answers: Vec<QueryAnswer> = eng
                    .serve(comm, &mk_queries(&qseeds))
                    .unwrap()
                    .answers
                    .iter()
                    .map(canon)
                    .collect();
                (resident, fresh, answers, ghosts, rebalances)
            },
        );
        let total_ghosts: u64 = out.iter().map(|r| r.3).sum();
        prop_assert_eq!(total_ghosts, expected_ghosts, "ghost deletes must be counted no-ops");
        for (rank, (resident, fresh, answers, _, rebalances)) in out.iter().enumerate() {
            prop_assert_eq!(
                resident, fresh,
                "rank {}/{} diverged from a fresh ingest (policy {}, side {}, chunk {:?}, rebalance {})",
                rank, ranks, policy, side, chunk, rebalance
            );
            prop_assert_eq!(
                answers, &expected,
                "served answers diverged on rank {}/{} (policy {}, side {}, chunk {:?}, rebalance {})",
                rank, ranks, policy, side, chunk, rebalance
            );
            if !rebalance {
                prop_assert_eq!(*rebalances, 0u64, "rebalancing off must never migrate");
            }
        }
    }
}
